"""The shared-mempool abstraction (Section III).

Every mempool implements the four primitives from the paper —
``ReceiveTx`` (:meth:`Mempool.on_client_batch`), ``ShareTx`` (internal to
the implementation), ``MakeProposal`` (:meth:`Mempool.make_payload`), and
``FillProposal`` (:meth:`Mempool.resolve`) — plus two hooks the consensus
engine needs:

* :meth:`Mempool.verify_payload` — can this payload be trusted? Stratus
  verifies availability proofs here; an invalid payload triggers a
  view-change in the engine.
* :meth:`Mempool.prepare` — may the replica vote yet? Native and simple
  SMP require the full data before the commit phase; Stratus only needs
  valid proofs, so it reports readiness immediately (the heart of
  Solution-I).
"""

from __future__ import annotations

import abc
from typing import Callable, TYPE_CHECKING

from repro.config import ProtocolConfig
from repro.sim.interfaces import Channel, Envelope
from repro.types import TxBatch
from repro.types.proposal import Block, Payload, Proposal

if TYPE_CHECKING:  # pragma: no cover
    from repro.replica.node import Replica


class MessageKinds:
    """Wire message kinds; the prefix groups them for bandwidth accounting.

    Table III groups leader/non-leader traffic into Proposals,
    Microblocks, Votes, and Acks; kinds starting with ``mb`` count as
    microblock traffic, ``pab.ack`` as acks, and so on.
    """

    MICROBLOCK = "mb"
    MICROBLOCK_GOSSIP = "mb.gossip"
    MICROBLOCK_FETCH = "mb.fetch"
    MICROBLOCK_FORWARD = "mb.forward"
    ACK = "pab.ack"
    PROOF = "pab.proof"
    FETCH_REQUEST = "fetch.req"
    RB_ECHO = "rb.echo"
    RB_READY = "rb.ready"
    LB_QUERY = "lb.query"
    LB_INFO = "lb.info"
    PROPOSAL = "ce.proposal"
    VOTE = "ce.vote"
    NEW_VIEW = "ce.newview"
    SYNC_REQUEST = "ce.sync"
    PBFT_PREPARE = "ce.prepare"
    PBFT_COMMIT = "ce.commit"
    # State-transfer kinds are routed to the replica itself (not the
    # mempool or consensus engine); see Replica.handle.
    STATE_SNAPSHOT_REQ = "state.snap_req"
    STATE_SNAPSHOT = "state.snap"
    # Sharded shared mempool (repro.sharding): the body push stays in the
    # ``mb`` accounting group and the shard ack in ``pab.ack``; the
    # certificate broadcast is its own (tiny, control-channel) group.
    SHARD_MICROBLOCK = "mb.shard"
    SHARD_ACK = "pab.ack.shard"
    SHARD_CERT = "pab.cert"

    MICROBLOCK_KINDS = (
        MICROBLOCK,
        MICROBLOCK_GOSSIP,
        MICROBLOCK_FETCH,
        MICROBLOCK_FORWARD,
        SHARD_MICROBLOCK,
    )


OnReady = Callable[[], None]
OnFull = Callable[[Block], None]


class Mempool(abc.ABC):
    """Abstract mempool bound to one replica."""

    name = "abstract"

    def __init__(self, host: "Replica", config: ProtocolConfig) -> None:
        self.host = host
        self.config = config

    # -- client side ---------------------------------------------------

    @abc.abstractmethod
    def on_client_batch(self, batch: TxBatch) -> None:
        """``ReceiveTx``: accept transactions from a client."""

    def rebase_microblock_ids(self, base: int) -> None:
        """Start this replica's local microblock counter at ``base``.

        The repo's integer microblock ids stand in for the paper's
        content hashes: ``(origin, counter)`` is unique only while the
        counter survives. A restarted live replica boots a fresh
        interpreter whose counter would re-issue pre-crash ids for
        *different* transactions — an id collision real content-hash ids
        cannot have. The live runtime calls this with a per-incarnation
        base (``generation << 32``) to keep each incarnation's ids
        disjoint. Must be called before the first microblock is cut.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support id rebasing"
        )

    # -- leader side -----------------------------------------------------

    @abc.abstractmethod
    def make_payload(self) -> Payload:
        """``MakeProposal``: pull pending content into a payload.

        Called by the consensus engine when this replica proposes. The
        payload may be empty (the chain still advances to commit earlier
        blocks).
        """

    # -- follower side ---------------------------------------------------

    def verify_payload(self, payload: Payload) -> bool:
        """Validate an incoming payload; ``False`` triggers a view-change."""
        return True

    @abc.abstractmethod
    def prepare(self, proposal: Proposal, on_ready: OnReady) -> None:
        """Gate voting: call ``on_ready`` once the proposal may enter
        the commit phase at this replica."""

    @abc.abstractmethod
    def resolve(self, proposal: Proposal, on_full: OnFull) -> None:
        """``FillProposal``: assemble the full block, fetching missing
        microblocks if needed, then call ``on_full``."""

    def on_commit(self, proposal: Proposal, commit_time: float) -> None:
        """Commit hook: report metrics once the block is full, then GC.

        The metrics hub deduplicates by block id, so every replica may
        call this; the first (earliest) report wins. Committed ids are
        marked *before* resolution: resolution can lag behind the commit
        (missing bodies still being fetched), and a fork abandoned in the
        same commit sweep must not re-queue ids the canonical chain just
        committed.
        """
        self.mark_committed(proposal)
        def report(block: Block) -> None:
            latencies = [
                (commit_time - mb.mean_arrival, float(mb.tx_count))
                for mb in block.microblocks.values()
            ]
            self.host.metrics.record_commit(
                block_id=proposal.block_id,
                tx_count=block.tx_count,
                microblock_count=len(block.microblocks),
                latencies=latencies,
                commit_time=commit_time,
            )
            block.committed_at = commit_time
            self.host.notify_block_resolved(block)
            self.host.on_block_executed(block)
            self.garbage_collect(proposal)

        self.resolve(proposal, report)

    def mark_committed(self, proposal: Proposal) -> None:
        """Record the proposal's content as committed, synchronously.

        Runs at commit time, before the (possibly slow) block resolution
        that precedes :meth:`garbage_collect`."""

    def garbage_collect(self, proposal: Proposal) -> None:
        """Drop per-microblock bookkeeping for a committed proposal."""

    def on_abandoned(self, proposal: Proposal) -> None:
        """A fork containing ``proposal`` lost; re-queue its content.

        Called once per replica when a commit reveals that a stored block
        is not on the canonical chain. Implementations re-queue payload
        they own so the content is eventually proposed again
        (SMP-Inclusion)."""

    @property
    def batcher(self):
        """The mempool's :class:`MicroBlockBatcher`, or None.

        Batching mempools override this; the aggregate workload mode
        needs it to wire per-replica arrival streams, and the crash /
        restart hooks below forward through it."""
        return None

    def on_crash(self) -> None:
        """The host replica is about to crash (gate still open).

        Called by ``Replica.crash`` *before* the crashed flag is set, so
        an attached arrival stream can digest the ticks that reached the
        replica while it was still up."""
        batcher = self.batcher
        if batcher is not None:
            batcher.on_crash()

    def on_restart(self) -> None:
        """The host replica restarted after a crash.

        Implementations resume work that was in flight when the crash
        flushed the network queues — e.g. Stratus re-pushes microblocks
        whose availability proofs never formed because the acks were
        dropped. Overrides must call ``super().on_restart()`` so an
        attached arrival stream resumes too."""
        batcher = self.batcher
        if batcher is not None:
            batcher.on_restart()

    # -- network ---------------------------------------------------------

    def on_message(self, envelope: Envelope) -> None:
        """Handle a mempool-level message (default: ignore)."""

    # -- helpers -----------------------------------------------------------

    @property
    def node_id(self) -> int:
        return self.host.node_id

    def send(
        self,
        dst: int,
        kind: str,
        size_bytes: float,
        payload: object,
        channel: Channel = Channel.DATA,
    ) -> None:
        self.host.network.send(
            self.node_id, dst, kind, size_bytes, payload, channel
        )

    def broadcast(
        self,
        kind: str,
        size_bytes: float,
        payload: object,
        channel: Channel = Channel.DATA,
        recipients: list[int] | None = None,
    ) -> None:
        self.host.network.broadcast(
            self.node_id, kind, size_bytes, payload, channel,
            recipients=recipients,
        )
