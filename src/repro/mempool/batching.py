"""Transaction batching into microblocks.

Transactions accumulate per replica until a microblock's worth of payload
bytes is reached (``batch_bytes``) or a flush timeout fires, amortizing
dissemination and verification cost exactly as Section III-D describes.
"""

from __future__ import annotations

from typing import Callable, Optional, TYPE_CHECKING

from repro.config import ProtocolConfig
from repro.sim.engine import Timer
from repro.types import TxBatch
from repro.types.microblock import MicroBlock, make_microblock_id

if TYPE_CHECKING:  # pragma: no cover
    from repro.replica.node import Replica

OnMicroBlock = Callable[[MicroBlock], None]


class MicroBlockBatcher:
    """Accumulates client transactions and emits microblocks."""

    def __init__(
        self,
        host: "Replica",
        config: ProtocolConfig,
        on_microblock: OnMicroBlock,
    ) -> None:
        self._host = host
        self._config = config
        self._emit = on_microblock
        self._pending_count = 0
        self._pending_sum_arrival = 0.0
        self._counter = 0
        self._base = 0
        self._flush_timer: Optional[Timer] = None
        self._arrivals = None

    @property
    def pending_tx_count(self) -> int:
        return self._pending_count

    @property
    def microblocks_emitted(self) -> int:
        return self._counter - self._base

    @property
    def capacity(self) -> int:
        """Transactions per full microblock (arrival-stream planning)."""
        return self._config.txs_per_microblock

    @property
    def flush_deadline(self) -> Optional[float]:
        """When the armed flush timer fires, or None when disarmed."""
        timer = self._flush_timer
        return timer.deadline if timer is not None else None

    def attach_arrivals(self, arrivals) -> None:
        """Wire an aggregate-mode arrival stream to pull from (two-way).

        With a stream attached the batcher *pulls* the tick backlog just
        before flushing, so a partial flush covers exactly the ticks the
        per-tick delivery path would have delivered by then.
        """
        self._arrivals = arrivals
        arrivals.bind(self)

    def on_crash(self) -> None:
        """Host is crashing: let the stream digest pre-crash ticks."""
        if self._arrivals is not None:
            self._arrivals.on_crash()

    def on_restart(self) -> None:
        """Host restarted: the stream drops the outage window's ticks."""
        if self._arrivals is not None:
            self._arrivals.on_restart()

    def rebase(self, base: int) -> None:
        """Start ids at ``base`` (see ``Mempool.rebase_microblock_ids``)."""
        if self.microblocks_emitted:
            raise RuntimeError("cannot rebase after emitting microblocks")
        self._counter = self._base = base

    def add(self, batch: TxBatch) -> None:
        """Absorb a client batch; emit microblocks as they fill."""
        if batch.payload_bytes != self._config.tx_payload:
            raise ValueError(
                f"batch payload {batch.payload_bytes} differs from "
                f"configured tx_payload {self._config.tx_payload}"
            )
        self._pending_count += batch.count
        self._pending_sum_arrival += batch.sum_arrival
        full_size = self._config.txs_per_microblock
        while self._pending_count >= full_size:
            self._emit_microblock(full_size)
        if self._pending_count > 0 and self._flush_timer is None:
            self._flush_timer = self._host.sim.schedule(
                self._config.batch_timeout, self._flush
            )

    def flush(self) -> None:
        """Emit whatever is pending as a (possibly partial) microblock."""
        if self._pending_count > 0:
            self._emit_microblock(self._pending_count)

    def _flush(self) -> None:
        arrivals = self._arrivals
        if arrivals is not None:
            # Pull ticks strictly before the deadline while the timer is
            # still armed (so add() doesn't re-arm it); per-tick delivery
            # would have landed them all before this event fired.
            arrivals.settle_before(self._host.sim.now)
        self._flush_timer = None
        self.flush()
        if arrivals is not None:
            arrivals.reschedule()

    def _emit_microblock(self, tx_count: int) -> None:
        mean_arrival = self._pending_sum_arrival / self._pending_count
        microblock = MicroBlock(
            id=make_microblock_id(self._host.node_id, self._counter),
            origin=self._host.node_id,
            tx_count=tx_count,
            tx_payload=self._config.tx_payload,
            created_at=self._host.sim.now,
            sum_arrival=mean_arrival * tx_count,
        )
        self._counter += 1
        self._pending_count -= tx_count
        self._pending_sum_arrival -= mean_arrival * tx_count
        if self._pending_count <= 0:
            self._pending_count = 0
            self._pending_sum_arrival = 0.0
            if self._flush_timer is not None:
                self._flush_timer.cancel()
                self._flush_timer = None
        self._host.notify_microblock(microblock)
        self._emit(microblock)
