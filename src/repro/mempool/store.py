"""Local microblock store with delivery waiters.

``mbMap`` in Algorithm 3: maps microblock ids to bodies, and lets other
components (proposal fill, fetch manager) register callbacks that fire
when a missing microblock finally arrives.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.types.microblock import MicroBlock, MicroBlockId

Waiter = Callable[[MicroBlock], None]


class MicroBlockStore:
    """Id-addressable microblock storage for one replica."""

    def __init__(self) -> None:
        self._blocks: dict[MicroBlockId, MicroBlock] = {}
        self._waiters: dict[MicroBlockId, list[Waiter]] = {}

    def __contains__(self, mb_id: MicroBlockId) -> bool:
        return mb_id in self._blocks

    def __len__(self) -> int:
        return len(self._blocks)

    def add(self, microblock: MicroBlock) -> bool:
        """Store a microblock; returns True on first delivery.

        First delivery fires any registered waiters, which is how blocked
        fill operations resume.
        """
        if microblock.id in self._blocks:
            return False
        self._blocks[microblock.id] = microblock
        for waiter in self._waiters.pop(microblock.id, []):
            waiter(microblock)
        return True

    def get(self, mb_id: MicroBlockId) -> Optional[MicroBlock]:
        return self._blocks.get(mb_id)

    def on_delivery(self, mb_id: MicroBlockId, waiter: Waiter) -> None:
        """Run ``waiter`` when ``mb_id`` arrives (immediately if present)."""
        existing = self._blocks.get(mb_id)
        if existing is not None:
            waiter(existing)
            return
        self._waiters.setdefault(mb_id, []).append(waiter)

    def discard(self, mb_id: MicroBlockId) -> None:
        """Garbage-collect one microblock (committed and executed)."""
        self._blocks.pop(mb_id, None)

    @property
    def ids(self) -> list[MicroBlockId]:
        return list(self._blocks)
