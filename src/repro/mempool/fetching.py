"""Missing-microblock fetching (the ``PAB-Fetch`` procedure, Algorithm 2).

A fetch round sends requests to a target set, arms a timeout ``delta``,
and repeats with fresh targets until the store reports delivery. Target
selection is pluggable: the simple SMP fetches from the current leader
(the behaviour that collapses under attack), while Stratus samples from
the availability proof's signers.
"""

from __future__ import annotations

from typing import Callable, TYPE_CHECKING

from repro.config import ProtocolConfig
from repro.sim.network import Channel
from repro.mempool.base import MessageKinds
from repro.mempool.store import MicroBlockStore
from repro.types import sizes
from repro.types.microblock import MicroBlockId

if TYPE_CHECKING:  # pragma: no cover
    from repro.replica.node import Replica

TargetProvider = Callable[[set[int]], list[int]]


def backoff_delay(config: ProtocolConfig, rounds: int, rng) -> float:
    """Retry delay after ``rounds`` completed rounds: exponential, jittered.

    Shared by fetch retries and PAB push retransmissions. The first retry
    waits ``fetch_timeout`` (delta in Algorithm 2); later ones grow by
    ``fetch_backoff_factor`` up to ``fetch_backoff_max``, with
    ``+/- fetch_jitter`` relative noise so synchronized retriers do not
    re-converge on the same peer at the same instant.
    """
    base = config.fetch_timeout * (
        config.fetch_backoff_factor ** (rounds - 1)
    )
    cap = max(config.fetch_backoff_max, config.fetch_timeout)
    delay = min(base, cap)
    if config.fetch_jitter > 0:
        delay *= 1.0 + rng.uniform(-config.fetch_jitter, config.fetch_jitter)
    return delay


#: Push retransmissions wait at least this multiple of the estimated
#: stable time (the p-th percentile push->quorum interval). Acts like a
#: TCP RTO: when the network is merely slow (congestion, delay spikes)
#: acks are still coming, so retransmitting at the uncongested cadence
#: would add load exactly when the network can least absorb it.
RETRY_STABLE_TIME_FACTOR = 3.0

#: ...and at least this multiple of the observed push->first-ack RTT,
#: the earliest congestion signal available before the stable-time
#: estimator has a window's worth of samples.
RETRY_RTT_FACTOR = 3.0

#: ...and at least this multiple of the transport's expected transfer
#: time for the retransmission itself (serialization + current egress
#: backlog). Retrying before the original copies even left the uplink
#: is what makes contended fair-share scenarios snowball.
RETRY_TRANSFER_TIME_FACTOR = 2.0


def adaptive_retry_delay(
    config: ProtocolConfig,
    rounds: int,
    host: "Replica",
    size_bytes: float,
    copies: int,
    stable_estimate: float | None = None,
    rtt_estimate: float | None = None,
) -> float:
    """Congestion-aware push-retransmission delay.

    The exponential, jittered :func:`backoff_delay` is the base (drawn
    first, so the RNG stream matches runs where no signal is available);
    each available signal — stable-time percentile, push->first-ack RTT,
    and the transport's backlog-aware transfer-time estimate — then
    raises the floor. Signals only ever *delay* a retry: a quorum
    cancels the timer, so an uncongested network is unaffected.
    """
    delay = backoff_delay(config, rounds, host.rng)
    if stable_estimate is not None:
        delay = max(delay, RETRY_STABLE_TIME_FACTOR * stable_estimate)
    if rtt_estimate is not None:
        delay = max(delay, RETRY_RTT_FACTOR * rtt_estimate)
    if copies > 0:
        expected = host.network.expected_transfer_seconds(
            host.node_id, size_bytes, copies
        )
        if expected is not None:
            delay = max(delay, RETRY_TRANSFER_TIME_FACTOR * expected)
    return delay


class _PendingFetch:
    __slots__ = ("mb_id", "targets_provider", "requested", "rounds")

    def __init__(self, mb_id: MicroBlockId, targets_provider: TargetProvider):
        self.mb_id = mb_id
        self.targets_provider = targets_provider
        self.requested: set[int] = set()
        self.rounds = 0


class FetchManager:
    """Drives fetch rounds and answers peers' fetch requests."""

    def __init__(
        self,
        host: "Replica",
        config: ProtocolConfig,
        store: MicroBlockStore,
    ) -> None:
        self._host = host
        self._config = config
        self._store = store
        self._pending: dict[MicroBlockId, _PendingFetch] = {}

    @property
    def outstanding(self) -> int:
        return len(self._pending)

    def request(
        self,
        mb_id: MicroBlockId,
        targets_provider: TargetProvider,
        delay: float = 0.0,
    ) -> None:
        """Fetch ``mb_id`` until delivered; idempotent per microblock.

        ``delay`` defers the first round: the common reason a microblock
        is missing is that its broadcast copy is still serializing at the
        origin, so an immediate request would duplicate an in-flight
        transfer (per-peer TCP FIFO prevents this in the prototype).
        """
        if mb_id in self._store or mb_id in self._pending:
            return
        pending = _PendingFetch(mb_id, targets_provider)
        self._pending[mb_id] = pending
        self._store.on_delivery(mb_id, lambda _mb: self._delivered(mb_id))
        if delay > 0:
            # Fire-path timer: no Timer/closure allocation. Most fetches
            # are satisfied by the in-flight broadcast copy before the
            # grace delay elapses, so the round callback guards against
            # a resolved (or replaced) pending entry instead of being
            # cancelled.
            self._host.sim.schedule_fire(delay, self._round, pending)
        else:
            self._round(pending)

    def handle_request(self, requester: int, mb_id: MicroBlockId) -> None:
        """Serve a peer's fetch request if we hold the microblock."""
        if not self._host.behavior.serves_fetches:
            return
        microblock = self._store.get(mb_id)
        if microblock is None:
            return
        self._host.network.send(
            self._host.node_id,
            requester,
            MessageKinds.MICROBLOCK_FETCH,
            microblock.size_bytes,
            microblock,
        )

    def cancel(self, mb_id: MicroBlockId) -> None:
        """Stop fetching ``mb_id`` (e.g. its block was GC'd or abandoned)."""
        self._pending.pop(mb_id, None)

    # -- internal ----------------------------------------------------------

    def _round(self, pending: _PendingFetch) -> None:
        # Identity check, not membership: the same mb_id may have been
        # cancelled and re-requested, in which case this fire event
        # belongs to the dead incarnation.
        if self._pending.get(pending.mb_id) is not pending:
            return
        pending.rounds += 1
        if (
            self._config.fetch_max_rounds
            and pending.rounds > self._config.fetch_max_rounds
        ):
            self._abandon(pending)
            return
        targets = pending.targets_provider(pending.requested)
        if not targets:
            # Exhausted the candidate set; retry everyone next round.
            pending.requested.clear()
            targets = pending.targets_provider(pending.requested)
        for target in targets:
            pending.requested.add(target)
            self._host.network.send(
                self._host.node_id,
                target,
                MessageKinds.FETCH_REQUEST,
                sizes.FETCH_REQUEST,
                pending.mb_id,
                Channel.CONTROL,
            )
            self._host.metrics.record_fetch()
        self._host.sim.schedule_fire(
            backoff_delay(self._config, pending.rounds, self._host.rng),
            self._round, pending,
        )

    def _abandon(self, pending: _PendingFetch) -> None:
        self._pending.pop(pending.mb_id, None)
        self._host.metrics.record_fetch_abandoned()
        self._host.trace("fetch_abandoned", microblock=pending.mb_id)

    def _delivered(self, mb_id: MicroBlockId) -> None:
        self._pending.pop(mb_id, None)


def sampled_signers(
    config: ProtocolConfig,
    rng,
    signers: tuple[int, ...],
    own_id: int,
) -> TargetProvider:
    """Target provider for PAB recovery: random subset of proof signers.

    Per Algorithm 2, each un-requested signer is asked with a configured
    probability; at least one target is always selected so a round makes
    progress.
    """

    def provider(requested: set[int]) -> list[int]:
        candidates = [
            signer
            for signer in signers
            if signer != own_id and signer not in requested
        ]
        if not candidates:
            return []
        chosen = [
            signer
            for signer in candidates
            if rng.random() < config.fetch_sample_fraction
        ]
        if not chosen:
            chosen = [rng.choice(candidates)]
        if len(chosen) > config.fetch_max_targets:
            chosen = rng.sample(chosen, config.fetch_max_targets)
        return chosen

    return provider


def single_target(target: int) -> TargetProvider:
    """Target provider that always asks one node (fetch-from-leader)."""

    def provider(requested: set[int]) -> list[int]:
        return [target]

    return provider
