"""Gossip-based shared mempool (SMP-HS-G).

Instead of direct broadcast, a new microblock is pushed to ``fanout``
random peers; each peer forwards it once to ``fanout`` further random
peers on first receipt ("infect and die"). Gossip sheds load from hot
senders but costs roughly ``fanout``-fold redundancy in bytes and leaves
a probabilistic tail of uncovered replicas, who fall back to fetching
from the proposer — the behaviour Fig. 10 measures against Stratus.
"""

from __future__ import annotations

from repro.mempool.base import MessageKinds
from repro.mempool.simple_smp import SimpleSharedMempool
from repro.sim.network import Envelope
from repro.types.microblock import MicroBlock


class GossipSharedMempool(SimpleSharedMempool):
    """SMP variant disseminating microblocks via push gossip."""

    name = "gossip"

    def _on_new_microblock(self, microblock: MicroBlock) -> None:
        self.store.add(microblock)
        self._enqueue_proposable(microblock.id)
        self._gossip(microblock, exclude={self.node_id})

    def _gossip(self, microblock: MicroBlock, exclude: set[int]) -> None:
        candidates = [
            node for node in range(self.config.n) if node not in exclude
        ]
        if not candidates:
            return
        fanout = min(self.config.gossip_fanout, len(candidates))
        targets = self.host.rng.sample(candidates, fanout)
        targets = self.host.behavior.share_targets(self.host, targets)
        for target in targets:
            self.send(
                target,
                MessageKinds.MICROBLOCK_GOSSIP,
                microblock.size_bytes,
                microblock,
            )

    def on_message(self, envelope: Envelope) -> None:
        if envelope.kind == MessageKinds.MICROBLOCK_GOSSIP:
            microblock = envelope.payload
            if self.store.add(microblock):
                self._enqueue_proposable(microblock.id)
                self._gossip(
                    microblock,
                    exclude={self.node_id, envelope.src, microblock.origin},
                )
            return
        super().on_message(envelope)
