"""Narwhal-style shared mempool: reliable broadcast with certificates.

Models the comparison baseline of Table I / Fig. 6: microblock bodies are
disseminated with a Bracha-style reliable broadcast (echo + ready rounds,
``O(n^2)`` small messages per microblock), and only *certified*
microblocks — ones that completed the ready quorum — are proposed.
Certification guarantees availability (like Stratus' PAB), so consensus
never blocks on missing bodies; the price is the quadratic message
complexity that limits scalability when mempool and consensus share
machines (Section II-B).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from repro.config import ProtocolConfig
from repro.mempool.base import Mempool, MessageKinds, OnFull, OnReady
from repro.mempool.batching import MicroBlockBatcher
from repro.mempool.fetching import FetchManager
from repro.mempool.store import MicroBlockStore
from repro.sim.network import Channel, Envelope
from repro.types import TxBatch, sizes
from repro.types.microblock import MicroBlock, MicroBlockId
from repro.types.proposal import Block, Payload, PayloadEntry, Proposal

if TYPE_CHECKING:  # pragma: no cover
    from repro.replica.node import Replica


class _RBState:
    """Per-microblock reliable-broadcast progress at one replica."""

    __slots__ = ("echoes", "readies", "echo_sent", "ready_sent", "certified")

    def __init__(self) -> None:
        self.echoes: set[int] = set()
        self.readies: set[int] = set()
        self.echo_sent = False
        self.ready_sent = False
        self.certified = False


class NarwhalMempool(Mempool):
    """Reliable-broadcast mempool (Narwhal comparison baseline)."""

    name = "narwhal"

    def __init__(self, host: "Replica", config: ProtocolConfig) -> None:
        super().__init__(host, config)
        self.store = MicroBlockStore()
        self.fetcher = FetchManager(host, config, self.store)
        self._batcher = MicroBlockBatcher(host, config, self._on_new_microblock)
        self._states: dict[MicroBlockId, _RBState] = {}
        self._proposable: deque[MicroBlockId] = deque()
        self._referenced: set[MicroBlockId] = set()
        self._committed: set[MicroBlockId] = set()

    # -- dissemination -------------------------------------------------

    @property
    def batcher(self) -> MicroBlockBatcher:
        return self._batcher

    def on_client_batch(self, batch: TxBatch) -> None:
        self._batcher.add(batch)

    def rebase_microblock_ids(self, base: int) -> None:
        self._batcher.rebase(base)

    def _on_new_microblock(self, microblock: MicroBlock) -> None:
        self.store.add(microblock)
        targets = self.host.behavior.share_targets(
            self.host, self._all_others()
        )
        self.broadcast(
            MessageKinds.MICROBLOCK,
            microblock.size_bytes,
            microblock,
            recipients=targets,
        )
        self._send_echo(microblock.id)

    def _all_others(self) -> list[int]:
        return [node for node in range(self.config.n) if node != self.node_id]

    def _state(self, mb_id: MicroBlockId) -> _RBState:
        if mb_id not in self._states:
            self._states[mb_id] = _RBState()
        return self._states[mb_id]

    def _send_echo(self, mb_id: MicroBlockId) -> None:
        state = self._state(mb_id)
        if state.echo_sent:
            return
        state.echo_sent = True
        state.echoes.add(self.node_id)
        self.broadcast(MessageKinds.RB_ECHO, sizes.ACK, mb_id,
                       channel=Channel.CONTROL)
        self._check_quorums(mb_id)

    def _send_ready(self, mb_id: MicroBlockId) -> None:
        state = self._state(mb_id)
        if state.ready_sent:
            return
        state.ready_sent = True
        state.readies.add(self.node_id)
        self.broadcast(MessageKinds.RB_READY, sizes.ACK, mb_id,
                       channel=Channel.CONTROL)
        self._check_quorums(mb_id)

    def _check_quorums(self, mb_id: MicroBlockId) -> None:
        state = self._state(mb_id)
        f = self.config.f
        if len(state.echoes) >= 2 * f + 1 and not state.ready_sent:
            self._send_ready(mb_id)
        if len(state.readies) >= f + 1 and not state.ready_sent:
            self._send_ready(mb_id)  # Bracha amplification
        if len(state.readies) >= 2 * f + 1 and not state.certified:
            state.certified = True
            self._on_certified(mb_id)

    def _on_certified(self, mb_id: MicroBlockId) -> None:
        """A ready quorum certifies availability; the id becomes proposable."""
        if mb_id not in self._referenced and mb_id not in self._committed:
            self._proposable.append(mb_id)
        if mb_id not in self.store:
            state = self._states[mb_id]
            holders = tuple(sorted(state.readies - {self.node_id}))
            self._fetch_from(mb_id, holders)

    def _fetch_from(self, mb_id: MicroBlockId, holders: tuple[int, ...]) -> None:
        rng = self.host.rng

        def provider(requested: set[int]) -> list[int]:
            candidates = [h for h in holders if h not in requested]
            if not candidates:
                return []
            return [rng.choice(candidates)]

        self.fetcher.request(mb_id, provider)

    # -- leader side -----------------------------------------------------

    def make_payload(self) -> Payload:
        entries: list[PayloadEntry] = []
        limit = self.config.proposal_max_microblocks
        while self._proposable:
            if limit and len(entries) >= limit:
                break
            mb_id = self._proposable.popleft()
            if mb_id in self._referenced or mb_id in self._committed:
                continue
            self._referenced.add(mb_id)
            entries.append(PayloadEntry(mb_id=mb_id))
        return Payload(entries=tuple(entries))

    # -- follower side -----------------------------------------------------

    def prepare(self, proposal: Proposal, on_ready: OnReady) -> None:
        """Certified ids are provably available: vote without the bodies."""
        for entry in proposal.payload.entries:
            self._referenced.add(entry.mb_id)
        on_ready()

    def resolve(self, proposal: Proposal, on_full: OnFull) -> None:
        block = Block(proposal=proposal)
        ids = proposal.payload.microblock_ids
        if not ids:
            block.filled_at = self.host.sim.now
            on_full(block)
            return
        remaining = {"count": len(ids)}

        def collect(microblock: MicroBlock) -> None:
            block.microblocks[microblock.id] = microblock
            remaining["count"] -= 1
            if remaining["count"] == 0:
                block.filled_at = self.host.sim.now
                on_full(block)

        for mb_id in ids:
            self.store.on_delivery(mb_id, collect)
            if mb_id not in self.store:
                state = self._state(mb_id)
                holders = tuple(sorted(state.readies - {self.node_id}))
                if holders:
                    self._fetch_from(mb_id, holders)

    def mark_committed(self, proposal: Proposal) -> None:
        for mb_id in proposal.payload.microblock_ids:
            self._committed.add(mb_id)

    def on_abandoned(self, proposal: Proposal) -> None:
        for mb_id in proposal.payload.microblock_ids:
            self._referenced.discard(mb_id)
            state = self._states.get(mb_id)
            if (
                state is not None
                and state.certified
                and mb_id not in self._committed
            ):
                self._proposable.append(mb_id)

    # -- network -----------------------------------------------------------

    def on_message(self, envelope: Envelope) -> None:
        kind = envelope.kind
        if kind in (MessageKinds.MICROBLOCK, MessageKinds.MICROBLOCK_FETCH):
            microblock = envelope.payload
            if self.store.add(microblock):
                self._send_echo(microblock.id)
        elif kind == MessageKinds.RB_ECHO:
            state = self._state(envelope.payload)
            state.echoes.add(envelope.src)
            self._check_quorums(envelope.payload)
        elif kind == MessageKinds.RB_READY:
            state = self._state(envelope.payload)
            state.readies.add(envelope.src)
            self._check_quorums(envelope.payload)
        elif kind == MessageKinds.FETCH_REQUEST:
            self.fetcher.handle_request(envelope.src, envelope.payload)
