"""Provably available broadcast (PAB) — Algorithms 1 and 2.

**Push phase.** The pusher broadcasts the microblock body; every receiver
stores it and returns a signed ack. Once ``q`` distinct acks accumulate
(the pusher's own counts), the pusher aggregates them into an
availability proof and reports it via ``on_available``. With
``q >= f + 1`` at least one ack came from a correct replica, so the body
is retrievable forever.

**Recovery phase.** Whoever owns the PAB instance broadcasts the proof;
replicas that verify a proof for a body they lack fetch it from a random
sample of the proof's signers, retrying every ``delta`` seconds
(:class:`repro.mempool.fetching.FetchManager`). Recovery traffic stays
off the consensus critical path: requests ride the control channel and
the returned bodies ride the data channel.
"""

from __future__ import annotations

from typing import Callable, Optional, TYPE_CHECKING

from repro.config import ProtocolConfig
from repro.crypto import (
    AvailabilityProof,
    ProofError,
    Signature,
    make_availability_proof,
    sign,
    verify_availability_proof,
)
from repro.mempool.base import MessageKinds
from repro.mempool.fetching import (
    FetchManager,
    RETRY_STABLE_TIME_FACTOR,
    adaptive_retry_delay,
    sampled_signers,
)
from repro.mempool.store import MicroBlockStore
from repro.sim.network import Channel, Envelope
from repro.types import sizes
from repro.types.microblock import MicroBlock, MicroBlockId

if TYPE_CHECKING:  # pragma: no cover
    from repro.replica.node import Replica

OnAvailable = Callable[[MicroBlockId, AvailabilityProof], None]
OnProof = Callable[[MicroBlockId, AvailabilityProof], None]

#: EWMA smoothing weight for the push->first-remote-ack RTT sample.
RTT_EWMA_ALPHA = 0.2

__all__ = ["PabEngine", "RETRY_STABLE_TIME_FACTOR"]


class _PushState:
    """Ack bookkeeping for one PAB instance at its pusher."""

    __slots__ = (
        "microblock", "acks", "signers", "started_at", "on_available",
        "done", "targets", "timer", "rounds",
    )

    def __init__(
        self,
        microblock: MicroBlock,
        started_at: float,
        on_available: OnAvailable,
        targets,
    ) -> None:
        self.microblock = microblock
        self.acks: list[Signature] = []
        #: Distinct ack signers, maintained incrementally — the quorum
        #: check is O(1) per ack instead of rebuilding a set every time.
        self.signers: set[int] = set()
        self.started_at = started_at
        self.on_available = on_available
        self.done = False
        self.targets = targets
        self.timer = None
        self.rounds = 1


class PabEngine:
    """One replica's PAB endpoint (pusher, witness, and recoverer roles)."""

    def __init__(
        self,
        host: "Replica",
        config: ProtocolConfig,
        store: MicroBlockStore,
        fetcher: FetchManager,
        on_proof: OnProof,
        on_stable: Optional[Callable[[MicroBlockId, float], None]] = None,
        retry_floor: Optional[Callable[[], Optional[float]]] = None,
    ) -> None:
        self._host = host
        self._config = config
        self._store = store
        self._fetcher = fetcher
        self._on_proof = on_proof
        self._on_stable = on_stable
        #: Current stable-time estimate in seconds (None = no data yet);
        #: scales the retransmission interval under congestion.
        self._retry_floor = retry_floor
        #: EWMA of the push->first-remote-ack interval: an RTT-like
        #: congestion signal that warms up within one push, long before
        #: the stable-time estimator has a full window.
        self._ack_rtt: Optional[float] = None
        self._pushes: dict[MicroBlockId, _PushState] = {}
        self._proofs: dict[MicroBlockId, AvailabilityProof] = {}
        #: Default push fan-out (everyone else), computed once.
        self._all_peers: tuple[int, ...] = tuple(
            node for node in range(config.n) if node != host.node_id
        )

    # -- pusher role -------------------------------------------------------

    def push(
        self,
        microblock: MicroBlock,
        on_available: OnAvailable,
        targets: Optional[list[int]] = None,
    ) -> None:
        """Start the push phase for ``microblock``.

        ``targets`` defaults to every other replica; Byzantine senders
        restrict it to mount the censoring attack of Fig. 8. The pusher's
        own ack is counted immediately (Algorithm 1, quorum includes the
        sender).
        """
        self._store.add(microblock)
        explicit = targets is not None
        state = _PushState(
            microblock, self._host.sim.now, on_available,
            list(targets) if explicit else self._all_peers,
        )
        self._pushes[microblock.id] = state
        state.acks.append(sign(self._host.node_id, microblock.id))
        state.signers.add(self._host.node_id)
        self._host.network.broadcast(
            self._host.node_id,
            MessageKinds.MICROBLOCK,
            microblock.size_bytes,
            microblock,
            # None lets the network use its cached default fan-out
            # (everyone else) without re-validating a recipient list.
            recipients=list(targets) if explicit else None,
        )
        self._arm_retry(state)
        self._maybe_complete(state)

    def repush_pending(self) -> int:
        """Immediately retransmit pushes that never reached a quorum.

        Hardened recovery path for crash-restart: acks sent while the
        pusher was down were dropped with its ingress queue, so without a
        nudge a stalled instance waits a full backoff period after the
        restart. Returns the number of instances retransmitted.
        """
        stalled = [
            state for state in self._pushes.values() if not state.done
        ]
        for state in stalled:
            if state.timer is not None:
                state.timer.cancel()
                state.timer = None
            self._retry_push(state)
        return len(stalled)

    def _arm_retry(self, state: _PushState) -> None:
        stable = self._retry_floor() if self._retry_floor else None
        pending = len(state.targets) - (len(state.signers) - 1)
        delay = adaptive_retry_delay(
            self._config, state.rounds, self._host,
            state.microblock.size_bytes, max(1, pending),
            stable_estimate=stable, rtt_estimate=self._ack_rtt,
        )
        state.timer = self._host.sim.schedule(
            delay, lambda: self._retry_push(state)
        )

    def _retry_push(self, state: _PushState) -> None:
        """Retransmit the body to targets that have not acked yet.

        The prototype gets push-phase reliability from TCP; the simulated
        network drops messages permanently (loss windows, partitions,
        crashed receivers), so without retransmission a push below quorum
        stalls forever and its transactions are never proposable.
        """
        if state.done or state.microblock.id not in self._pushes:
            return
        state.rounds += 1
        acked = state.signers
        missing = [node for node in state.targets if node not in acked]
        if missing:
            self._host.network.broadcast(
                self._host.node_id,
                MessageKinds.MICROBLOCK,
                state.microblock.size_bytes,
                state.microblock,
                recipients=missing,
            )
        self._arm_retry(state)

    def broadcast_proof(self, mb_id: MicroBlockId, proof: AvailabilityProof) -> None:
        """Start the recovery phase: disseminate the availability proof."""
        self._proofs[mb_id] = proof
        self._host.network.broadcast(
            self._host.node_id,
            MessageKinds.PROOF,
            proof.size_bytes,
            (mb_id, proof),
            Channel.CONTROL,
        )

    def proof_for(self, mb_id: MicroBlockId) -> Optional[AvailabilityProof]:
        return self._proofs.get(mb_id)

    def discard(self, mb_id: MicroBlockId) -> None:
        """Garbage-collect proof state for a committed microblock.

        Any outstanding recovery fetch is cancelled too — once the body
        is discarded everywhere, its retry timer would otherwise keep
        polling peers (and leak the pending entry) until the run ends.
        """
        self._proofs.pop(mb_id, None)
        state = self._pushes.pop(mb_id, None)
        if state is not None and state.timer is not None:
            state.timer.cancel()
        self._fetcher.cancel(mb_id)

    def fetch(self, mb_id: MicroBlockId, proof: AvailabilityProof) -> None:
        """``PAB-Fetch``: retrieve a missing body from the proof's signers.

        The first round is deferred by a grace period: in the normal case
        the body is still in flight (per-peer FIFO in the prototype means
        it precedes the proof), and fetching immediately would duplicate
        the transfer. Recovery uses background bandwidth (Section IV-B).
        """
        provider = sampled_signers(
            self._config, self._host.rng, proof.signers, self._host.node_id
        )
        self._fetcher.request(
            mb_id, provider, delay=self._config.effective_recovery_delay
        )

    # -- message handling ----------------------------------------------

    def on_message(self, envelope: Envelope) -> bool:
        """Process PAB traffic; returns False for non-PAB kinds."""
        kind = envelope.kind
        if kind in (
            MessageKinds.MICROBLOCK,
            MessageKinds.MICROBLOCK_FETCH,
        ):
            self._on_body(envelope)
            return True
        if kind == MessageKinds.ACK:
            self._on_ack(envelope)
            return True
        if kind == MessageKinds.PROOF:
            self._on_proof_message(envelope)
            return True
        if kind == MessageKinds.FETCH_REQUEST:
            self._fetcher.handle_request(envelope.src, envelope.payload)
            return True
        return False

    def _on_body(self, envelope: Envelope) -> None:
        microblock: MicroBlock = envelope.payload
        self._store.add(microblock)
        if (
            envelope.kind == MessageKinds.MICROBLOCK
            and self._host.behavior.acks_microblocks
        ):
            # Witness: ack back to the pusher, even for duplicates — a
            # proxy re-pushing an already-seen body needs its own quorum.
            self._host.network.send(
                self._host.node_id,
                envelope.src,
                MessageKinds.ACK,
                sizes.ACK,
                sign(self._host.node_id, microblock.id),
                Channel.CONTROL,
            )

    def _on_ack(self, envelope: Envelope) -> None:
        ack: Signature = envelope.payload
        state = self._pushes.get(ack.digest)
        if state is None or state.done:
            return
        if len(state.signers) == 1 and state.rounds == 1:
            # First remote ack of an un-retried push: a clean RTT sample.
            sample = self._host.sim.now - state.started_at
            if self._ack_rtt is None:
                self._ack_rtt = sample
            else:
                self._ack_rtt += RTT_EWMA_ALPHA * (sample - self._ack_rtt)
        state.acks.append(ack)
        state.signers.add(ack.signer)
        self._maybe_complete(state)

    def _maybe_complete(self, state: _PushState) -> None:
        quorum = self._config.stability_quorum
        if len(state.signers) < quorum:
            return
        try:
            proof = make_availability_proof(
                state.microblock.id, state.acks, quorum, self._config.n
            )
        except ProofError:
            return
        state.done = True
        if state.timer is not None:
            state.timer.cancel()
            state.timer = None
        elapsed = self._host.sim.now - state.started_at
        if self._on_stable is not None:
            self._on_stable(state.microblock.id, elapsed)
        del self._pushes[state.microblock.id]
        state.on_available(state.microblock.id, proof)

    def _on_proof_message(self, envelope: Envelope) -> None:
        mb_id, proof = envelope.payload
        if not verify_availability_proof(
            proof, mb_id, self._config.stability_quorum, self._config.n
        ):
            return
        first_time = mb_id not in self._proofs
        self._proofs[mb_id] = proof
        if mb_id not in self._store:
            self.fetch(mb_id, proof)
        if first_time:
            self._on_proof(mb_id, proof)
