"""Stratus: the paper's robust shared mempool.

Three cooperating pieces:

* :mod:`repro.mempool.stratus.pab` — provably available broadcast
  (Algorithms 1 and 2);
* :mod:`repro.mempool.stratus.estimator` — stable-time workload
  estimation (Section V-B);
* :mod:`repro.mempool.stratus.dlb` — distributed load balancing with
  power-of-d proxy selection (Algorithm 4);
* :mod:`repro.mempool.stratus.mempool` — the mempool tying them to the
  consensus engine (Algorithm 3).
"""

from repro.mempool.stratus.pab import PabEngine
from repro.mempool.stratus.estimator import StableTimeEstimator
from repro.mempool.stratus.dlb import LoadBalancer
from repro.mempool.stratus.mempool import StratusMempool

__all__ = ["PabEngine", "StableTimeEstimator", "LoadBalancer", "StratusMempool"]
