"""The Stratus shared mempool (Algorithm 3).

Bookkeeping mirrors the paper: ``mbMap`` is the microblock store,
``pMap`` maps microblock ids to availability proofs, and ``avaQue``
queues provably-available ids for proposal. A proposal built by
:meth:`StratusMempool.make_payload` carries each referenced id *with its
proof*; a replica that verifies those proofs can vote immediately —
missing bodies are fetched from proof signers over the data channel
without blocking consensus (Solution-I). Load balancing (Solution-II) is
delegated to :class:`repro.mempool.stratus.dlb.LoadBalancer`.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from repro.config import ProtocolConfig
from repro.crypto import AvailabilityProof, verify_availability_proof
from repro.mempool.base import Mempool, MessageKinds, OnFull, OnReady
from repro.mempool.batching import MicroBlockBatcher
from repro.mempool.fetching import FetchManager
from repro.mempool.store import MicroBlockStore
from repro.mempool.stratus.dlb import LoadBalancer
from repro.mempool.stratus.estimator import StableTimeEstimator
from repro.mempool.stratus.pab import PabEngine
from repro.sim.network import Envelope
from repro.types import TxBatch
from repro.types.microblock import MicroBlock, MicroBlockId
from repro.types.proposal import Block, Payload, PayloadEntry, Proposal

if TYPE_CHECKING:  # pragma: no cover
    from repro.replica.node import Replica


class StratusMempool(Mempool):
    """Shared mempool with PAB availability proofs and DLB (S-HS, S-SL)."""

    name = "stratus"

    def __init__(self, host: "Replica", config: ProtocolConfig) -> None:
        super().__init__(host, config)
        self.store = MicroBlockStore()  # mbMap
        self.fetcher = FetchManager(host, config, self.store)
        self.estimator = StableTimeEstimator(
            window=config.estimator_window,
            percentile=config.estimator_percentile,
            busy_margin=config.busy_margin,
            busy_slack=config.busy_slack,
        )
        self.pab = PabEngine(
            host, config, self.store, self.fetcher,
            on_proof=self._on_remote_proof,
            on_stable=self._on_stable,
            retry_floor=self.estimator.estimate,
        )
        self.balancer = LoadBalancer(
            host, config, self.estimator, self.pab,
            on_available=self._on_self_available,
        )
        self._batcher = MicroBlockBatcher(host, config, self._on_new_microblock)
        self._ava_queue: deque[MicroBlockId] = deque()  # avaQue
        self._proofs: dict[MicroBlockId, AvailabilityProof] = {}  # pMap
        self._queued: set[MicroBlockId] = set()
        self._referenced: set[MicroBlockId] = set()
        self._committed: set[MicroBlockId] = set()

    # -- client / dissemination -------------------------------------------

    @property
    def batcher(self) -> MicroBlockBatcher:
        return self._batcher

    def on_client_batch(self, batch: TxBatch) -> None:
        self._batcher.add(batch)

    def rebase_microblock_ids(self, base: int) -> None:
        self._batcher.rebase(base)

    def _on_new_microblock(self, microblock: MicroBlock) -> None:
        self.host.trace(
            "mb_new", mb=microblock.id, txs=microblock.tx_count,
        )
        self.balancer.handle_new_microblock(microblock)

    def _on_stable(self, mb_id: MicroBlockId, elapsed: float) -> None:
        self.host.trace("mb_stable", mb=mb_id, st=round(elapsed, 6))
        self.estimator.record(elapsed)
        self.host.metrics.record_stable_time(elapsed)
        # A self-push completing means this replica ran the push phase;
        # broadcast the proof (recovery phase) and queue the id. Forwarded
        # pushes settle through the LoadBalancer instead.

    def _add_available(
        self, mb_id: MicroBlockId, proof: AvailabilityProof
    ) -> None:
        """Record ``(id, proof)`` in pMap and push the id onto avaQue."""
        self._proofs[mb_id] = proof
        if (
            mb_id not in self._queued
            and mb_id not in self._referenced
            and mb_id not in self._committed
        ):
            self._queued.add(mb_id)
            self._ava_queue.append(mb_id)

    def _on_self_available(
        self, mb_id: MicroBlockId, proof: AvailabilityProof
    ) -> None:
        """A PAB instance this replica owns became available.

        Covers both a completed self-push and a settled forward (where the
        origin takes over recovery): broadcast the proof, then queue.
        A proof-withholding attacker (Section VIII) suppresses this step,
        wasting the bandwidth its body broadcast consumed — its own
        clients' transactions simply never become proposable.
        """
        if self.host.behavior.withholds_proofs:
            return
        self.pab.broadcast_proof(mb_id, proof)
        self._add_available(mb_id, proof)

    def on_restart(self) -> None:
        super().on_restart()
        repushed = self.pab.repush_pending()
        if repushed:
            self.host.trace("mb_repush", count=repushed)

    def _on_remote_proof(
        self, mb_id: MicroBlockId, proof: AvailabilityProof
    ) -> None:
        """A PAB-Proof message arrived (already verified by the engine)."""
        if self.balancer.on_proof_received(mb_id, proof):
            return  # settled a forwarded microblock; balancer recovered it
        self._add_available(mb_id, proof)

    # -- leader side ---------------------------------------------------

    def make_payload(self) -> Payload:
        """MakeProposal: pull proven ids (with proofs) from avaQue."""
        entries: list[PayloadEntry] = []
        limit = self.config.proposal_max_microblocks
        while self._ava_queue:
            if limit and len(entries) >= limit:
                break
            mb_id = self._ava_queue.popleft()
            self._queued.discard(mb_id)
            if mb_id in self._referenced or mb_id in self._committed:
                continue
            self._referenced.add(mb_id)
            entries.append(
                PayloadEntry(mb_id=mb_id, proof=self._proofs[mb_id])
            )
        return Payload(entries=tuple(entries))

    # -- follower side -----------------------------------------------------

    def verify_payload(self, payload: Payload) -> bool:
        """threshold-verify every proof; failure triggers a view-change."""
        for entry in payload.entries:
            if entry.proof is None:
                return False
            if not verify_availability_proof(
                entry.proof, entry.mb_id,
                self.config.stability_quorum, self.config.n,
            ):
                return False
        return True

    def prepare(self, proposal: Proposal, on_ready: OnReady) -> None:
        """Valid proofs guarantee availability: enter the commit phase now.

        Missing bodies are fetched from proof signers in the background
        (FillProposal runs on a thread independent of consensus in the
        prototype; here, on the data channel via ``resolve``).
        """
        for entry in proposal.payload.entries:
            self._referenced.add(entry.mb_id)
            if entry.proof is not None:
                self._proofs.setdefault(entry.mb_id, entry.proof)
        on_ready()

    def resolve(self, proposal: Proposal, on_full: OnFull) -> None:
        block = Block(proposal=proposal)
        entries = proposal.payload.entries
        if not entries:
            block.filled_at = self.host.sim.now
            on_full(block)
            return
        remaining = {"count": len(entries)}

        def collect(microblock: MicroBlock) -> None:
            block.microblocks[microblock.id] = microblock
            remaining["count"] -= 1
            if remaining["count"] == 0:
                block.filled_at = self.host.sim.now
                on_full(block)

        for entry in entries:
            self.store.on_delivery(entry.mb_id, collect)
            if entry.mb_id not in self.store and entry.proof is not None:
                self.pab.fetch(entry.mb_id, entry.proof)

    def mark_committed(self, proposal: Proposal) -> None:
        """Commit hook (Section VIII): ids must never re-enter avaQue."""
        for mb_id in proposal.payload.microblock_ids:
            self._committed.add(mb_id)

    def garbage_collect(self, proposal: Proposal) -> None:
        """Retire a resolved proposal's microblock bodies.

        Bodies and proofs are discarded after the retention window so
        straggling replicas can still fetch them meanwhile.
        """
        ids = list(proposal.payload.microblock_ids)
        retention = self.config.gc_retention
        if retention > 0:
            self.host.sim.schedule(
                retention, lambda: self._discard_bodies(ids)
            )

    def _discard_bodies(self, ids: list[MicroBlockId]) -> None:
        for mb_id in ids:
            self.store.discard(mb_id)
            self._proofs.pop(mb_id, None)
            self.pab.discard(mb_id)

    def on_abandoned(self, proposal: Proposal) -> None:
        """Re-queue proven ids from a lost fork (SMP-Inclusion)."""
        for entry in proposal.payload.entries:
            self._referenced.discard(entry.mb_id)
            if (
                entry.mb_id not in self._committed
                and entry.mb_id in self._proofs
            ):
                proof = self._proofs[entry.mb_id]
                self._add_available(entry.mb_id, proof)

    # -- network -----------------------------------------------------------

    def on_message(self, envelope: Envelope) -> None:
        if self.balancer.on_message(envelope):
            return
        self.pab.on_message(envelope)
