"""Stable-time workload estimation (Section V-B, Fig. 4).

The *stable time* (ST) of a microblock is the interval between the pusher
broadcasting it and the ack quorum arriving. The estimator keeps a
sliding window of the latest STs, summarizes it with the n-th percentile,
and compares that against a baseline — the smallest ST ever observed,
which approximates the uncongested constant the paper calls alpha. A
replica is *busy* when the percentile exceeds the baseline by the
configured margin, mirroring the observation that delay rises sharply
under overload while staying flat otherwise (Appendix B).

The window is maintained as an incrementally sorted list (one bisect
removal plus one insort per sample) and the percentile is cached until
the next :meth:`record`, so a DLB decision that consults both
:meth:`is_busy` and :meth:`load_status` costs one order-statistic lookup
instead of two full sorts.
"""

from __future__ import annotations

import math
from bisect import bisect_left, insort
from collections import deque
from typing import Optional

_MIN_SAMPLES = 5


class StableTimeEstimator:
    """Sliding-window percentile estimator for one replica's load."""

    def __init__(
        self,
        window: int = 100,
        percentile: float = 95.0,
        busy_margin: float = 2.0,
        busy_slack: float = 0.05,
        baseline_drift: float = 0.01,
    ) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if not 0 < percentile <= 100:
            raise ValueError(f"percentile must be in (0, 100], got {percentile}")
        if busy_margin < 1.0:
            raise ValueError(f"busy_margin must be >= 1, got {busy_margin}")
        if baseline_drift < 0:
            raise ValueError(f"baseline_drift must be >= 0, got {baseline_drift}")
        self._window: deque[float] = deque(maxlen=window)
        self._sorted: list[float] = []
        self._percentile = percentile
        self._busy_margin = busy_margin
        self._busy_slack = busy_slack
        self._baseline_drift = baseline_drift
        self._baseline: Optional[float] = None
        self._recorded = 0
        self._cached_estimate: Optional[float] = None
        self._cache_valid = False
        self._recomputes = 0

    @property
    def sample_count(self) -> int:
        return self._recorded

    @property
    def estimate_recomputes(self) -> int:
        """How many times the percentile was actually recomputed.

        Test hook for the caching contract: an ``is_busy()`` +
        ``load_status()`` call chain between two ``record()`` calls must
        bump this at most once.
        """
        return self._recomputes

    @property
    def baseline(self) -> Optional[float]:
        """Drifting floor of observed STs: the uncongested constant (alpha).

        A pure all-time minimum is brittle — one lucky sample would lower
        the busy threshold forever — so the floor creeps upward by
        ``baseline_drift`` per sample until a new low anchors it again.
        A replica whose environment really did get permanently slower
        therefore re-learns its alpha instead of reporting busy forever.
        """
        return self._baseline

    def record(self, stable_time: float) -> None:
        """Add a new ST sample (the window slides, Fig. 4)."""
        if stable_time < 0:
            raise ValueError(f"stable time must be >= 0, got {stable_time}")
        window = self._window
        if len(window) == window.maxlen:
            # The deque is about to evict its oldest sample; mirror the
            # eviction in the sorted view before inserting the new one.
            evicted = window[0]
            self._sorted.pop(bisect_left(self._sorted, evicted))
        window.append(stable_time)
        insort(self._sorted, stable_time)
        self._recorded += 1
        self._cache_valid = False
        if self._baseline is None:
            self._baseline = stable_time
        else:
            self._baseline = min(
                stable_time, self._baseline * (1.0 + self._baseline_drift)
            )

    def estimate(self) -> Optional[float]:
        """Current ST estimate: the n-th percentile over the window.

        Cached between :meth:`record` calls; the recompute is a single
        index into the incrementally maintained sorted window.
        """
        if not self._cache_valid:
            if not self._sorted:
                self._cached_estimate = None
            else:
                # Nearest-rank percentile (ceil convention).
                rank = max(
                    0,
                    math.ceil(len(self._sorted) * self._percentile / 100.0) - 1,
                )
                self._cached_estimate = self._sorted[rank]
                self._recomputes += 1
            self._cache_valid = True
        return self._cached_estimate

    def is_busy(self) -> bool:
        """IsBusy() in Algorithm 4.

        A replica with too few samples is never busy — it has not pushed
        enough to be congested, and declaring cold replicas busy would
        stop them from ever volunteering capacity.
        """
        if self._recorded < _MIN_SAMPLES or self._baseline is None:
            return False
        estimate = self.estimate()
        if estimate is None:
            return False
        threshold = self._busy_margin * self._baseline + self._busy_slack
        return estimate > threshold

    def load_status(self) -> Optional[float]:
        """GetLoadStatus() in Algorithm 4.

        Returns the ST estimate (smaller means more spare capacity), or
        ``None`` when busy — a busy replica must not advertise itself as
        a proxy. Replicas without samples report 0.0: a cold replica has
        maximal spare dissemination capacity. Shares the cached estimate
        with :meth:`is_busy`, so the pair costs one computation.
        """
        if self.is_busy():
            return None
        estimate = self.estimate()
        if estimate is None:
            return 0.0
        return estimate
