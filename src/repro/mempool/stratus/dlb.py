"""Distributed load balancing (DLB) — Algorithm 4.

A busy replica forwards newly generated microblocks to *proxies* chosen
with power-of-d-choices: it queries ``d`` random replicas for their load
status, forwards the microblock body to the least-loaded responder, and
waits for that proxy to complete the PAB push phase (evidenced by the
availability proof arriving back). Proxies that fail to produce a proof
in time stay on the ``banList`` and the microblock is re-forwarded
elsewhere, which is what defeats lying Byzantine proxies.

One deliberate addition over the paper's pseudocode: a busy replica still
pushes every ``lb_probe_interval``-th microblock itself. The ST estimator
only learns from the replica's *own* pushes, so a replica that forwarded
everything would never observe its own recovery and would stay "busy"
forever; the probe keeps the estimate live at a bounded cost. (Recorded
in DESIGN.md as a substitution-level decision.)
"""

from __future__ import annotations

from typing import Callable, Optional, TYPE_CHECKING

from repro.config import ProtocolConfig
from repro.crypto import AvailabilityProof
from repro.mempool.base import MessageKinds
from repro.mempool.stratus.estimator import StableTimeEstimator
from repro.mempool.stratus.pab import PabEngine
from repro.sim.engine import Timer
from repro.sim.network import Channel, Envelope
from repro.types import sizes
from repro.types.microblock import MicroBlock, MicroBlockId

if TYPE_CHECKING:  # pragma: no cover
    from repro.replica.node import Replica

OnAvailable = Callable[[MicroBlockId, AvailabilityProof], None]


class _ForwardState:
    """Progress of one forwarded microblock at its origin."""

    __slots__ = (
        "microblock", "replies", "proxy", "query_timer", "forward_timer",
        "settled", "attempts",
    )

    def __init__(self, microblock: MicroBlock) -> None:
        self.microblock = microblock
        self.replies: dict[int, Optional[float]] = {}
        self.proxy: Optional[int] = None
        self.query_timer: Optional[Timer] = None
        self.forward_timer: Optional[Timer] = None
        self.settled = False
        self.attempts = 0


class LoadBalancer:
    """DLB endpoint at one replica (both origin and proxy roles)."""

    def __init__(
        self,
        host: "Replica",
        config: ProtocolConfig,
        estimator: StableTimeEstimator,
        pab: PabEngine,
        on_available: OnAvailable,
    ) -> None:
        self._host = host
        self._config = config
        self._estimator = estimator
        self._pab = pab
        self._on_available = on_available
        self._forwards: dict[MicroBlockId, _ForwardState] = {}
        self.ban_list: set[int] = set()
        self._since_probe = 0

    # -- origin role ---------------------------------------------------

    def handle_new_microblock(self, microblock: MicroBlock) -> None:
        """Entry point for freshly batched microblocks (NEWMB event)."""
        if not self._config.load_balancing or not self._estimator.is_busy():
            self._push_self(microblock)
            return
        self._since_probe += 1
        if self._since_probe >= self._config.lb_probe_interval:
            self._since_probe = 0
            self._push_self(microblock)
            return
        self._forward(microblock)

    def _push_self(self, microblock: MicroBlock) -> None:
        targets = self._host.behavior.share_targets(
            self._host, self._all_others()
        )
        self._pab.push(microblock, self._on_available, targets=targets)

    def _forward(self, microblock: MicroBlock) -> None:
        """LB-ForwardLoad: sample d candidates and query their load."""
        state = self._forwards.get(microblock.id)
        if state is None:
            state = _ForwardState(microblock)
            self._forwards[microblock.id] = state
        state.attempts += 1
        state.replies = {}
        state.proxy = None
        candidates = [
            node for node in self._all_others() if node not in self.ban_list
        ]
        if not candidates:
            self._settle(state)
            self._push_self(microblock)
            return
        d = min(self._config.lb_samples, len(candidates))
        sampled = self._host.rng.sample(candidates, d)
        for target in sampled:
            state.replies[target] = None
            self._host.network.send(
                self._host.node_id, target,
                MessageKinds.LB_QUERY, sizes.LB_QUERY, microblock.id,
                Channel.CONTROL,
            )
        state.query_timer = self._host.sim.schedule(
            self._config.lb_query_timeout, lambda: self._pick_proxy(state)
        )

    def _pick_proxy(self, state: _ForwardState) -> None:
        """All replies in (or timeout): forward to the least-loaded proxy."""
        if state.settled or state.proxy is not None:
            return
        if state.query_timer is not None:
            state.query_timer.cancel()
            state.query_timer = None
        loaded = [
            (status, node)
            for node, status in state.replies.items()
            if status is not None
        ]
        if not loaded:
            self._settle(state)
            self._push_self(state.microblock)
            return
        _, proxy = min(loaded)
        state.proxy = proxy
        self.ban_list.add(proxy)
        self._host.trace(
            "lb_forward", mb=state.microblock.id, proxy=proxy,
        )
        self._host.metrics.record_forward()
        self._host.network.send(
            self._host.node_id, proxy,
            MessageKinds.MICROBLOCK_FORWARD,
            state.microblock.size_bytes,
            state.microblock,
        )
        state.forward_timer = self._host.sim.schedule(
            self._config.lb_forward_timeout,
            lambda: self._forward_timed_out(state),
        )

    def _forward_timed_out(self, state: _ForwardState) -> None:
        """No proof from the proxy in time: it stays banned; retry.

        The retry re-evaluates busyness: if this replica has recovered in
        the meantime it pushes the microblock itself instead of bouncing
        it to yet another proxy.
        """
        if state.settled:
            return
        state.forward_timer = None
        if not self._estimator.is_busy():
            self._settle(state)
            self._push_self(state.microblock)
            return
        self._forward(state.microblock)

    def on_proof_received(
        self, mb_id: MicroBlockId, proof: AvailabilityProof
    ) -> bool:
        """A proof for a forwarded microblock arrived: settle and recover.

        Returns True when this proof settles one of our forwards, in which
        case the origin takes over the recovery phase (Algorithm 4 line
        30: trigger PAB-AVA): the ``on_available`` callback broadcasts
        the proof.
        """
        state = self._forwards.get(mb_id)
        if state is None or state.settled:
            return False
        self._settle(state)
        if state.proxy is not None:
            self.ban_list.discard(state.proxy)
        self._on_available(mb_id, proof)
        return True

    def _settle(self, state: _ForwardState) -> None:
        state.settled = True
        if state.query_timer is not None:
            state.query_timer.cancel()
        if state.forward_timer is not None:
            state.forward_timer.cancel()
        self._forwards.pop(state.microblock.id, None)

    # -- proxy / sampled role ------------------------------------------

    def on_message(self, envelope: Envelope) -> bool:
        """Handle DLB traffic; returns False for non-DLB kinds."""
        kind = envelope.kind
        if kind == MessageKinds.LB_QUERY:
            self._answer_query(envelope)
            return True
        if kind == MessageKinds.LB_INFO:
            self._record_reply(envelope)
            return True
        if kind == MessageKinds.MICROBLOCK_FORWARD:
            self._act_as_proxy(envelope)
            return True
        return False

    def _answer_query(self, envelope: Envelope) -> None:
        status = self._host.behavior.load_status(self._estimator.load_status())
        if status is None:
            return  # busy replicas do not advertise (GetLoadStatus = NULL)
        self._host.network.send(
            self._host.node_id, envelope.src,
            MessageKinds.LB_INFO, sizes.LB_INFO,
            (envelope.payload, status),
            Channel.CONTROL,
        )

    def _record_reply(self, envelope: Envelope) -> None:
        mb_id, status = envelope.payload
        state = self._forwards.get(mb_id)
        if state is None or state.settled or state.proxy is not None:
            return
        if envelope.src in state.replies:
            state.replies[envelope.src] = status
            if all(reply is not None for reply in state.replies.values()):
                self._pick_proxy(state)

    def _act_as_proxy(self, envelope: Envelope) -> None:
        """LB-Forward received: run the push phase for the origin."""
        if not self._host.behavior.handles_forwards:
            return  # Byzantine proxy censors the microblock
        microblock: MicroBlock = envelope.payload
        origin = envelope.src

        def hand_back(mb_id: MicroBlockId, proof: AvailabilityProof) -> None:
            self._host.network.send(
                self._host.node_id, origin,
                MessageKinds.PROOF, proof.size_bytes, (mb_id, proof),
                Channel.CONTROL,
            )

        self._pab.push(microblock, hand_back)

    def _all_others(self) -> list[int]:
        return [
            node for node in range(self._config.n)
            if node != self._host.node_id
        ]
