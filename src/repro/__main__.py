"""``python -m repro`` entry point."""

from repro.cli import run_cli

if __name__ == "__main__":
    raise SystemExit(run_cli())
