"""One live replica: the OS-process entry point.

``replica_main`` is the target handed to ``multiprocessing`` (spawn
context — nothing here may rely on inherited state). It rebuilds the
exact stack :func:`repro.harness.runner.build_experiment` wires in-sim —
``Replica`` + mempool class + consensus class from the same registries —
but on the live backends: :class:`RealtimeScheduler` over asyncio and
:class:`LiveNetwork` over TCP. No protocol code is forked.

Differences from the sim wiring, all environmental:

* every process seeds its own ``random.Random`` from ``(seed, node_id)``
  instead of drawing a stream from the run-wide registry;
* the native mempool's :class:`SharedPendingPool` is per-process — in-sim
  it is a run-wide object, which no real deployment can have. Clients
  submit to every replica, so rotating leaders still find transactions;
* commits are recorded by *every* replica into its local
  :class:`MetricsHub`; the orchestrator deduplicates by block id when
  merging, recovering the sim's first-commit semantics.

On exit the process writes one JSON document (metrics summary) to
``spec["result_path"]``. Protocol events for oracle replay stream to
``spec["events_path"]`` as flushed JSONL *as they happen*: a replica
SIGKILLed by the chaos layer loses its end-of-run summary but not its
event record, so the orchestrator's safety/ledger replay stays complete
across crash faults (a microblock is recorded before it is broadcast —
if it reached any peer, its creation line reached the page cache).

Chaos wiring: ``spec["shaping"]`` (when present) is the schedule's
link-shaping window list; it builds a :class:`LinkShaper` seeded from
``(seed, generation, node_id)`` so loss decisions differ across respawn
generations but replay identically for a fixed spec.
"""

from __future__ import annotations

import asyncio
import json
import os
import random
import signal

from repro.config import ProtocolConfig
from repro.consensus import CONSENSUS_CLASSES
from repro.durability import DurabilityConfig, DurableKVStore
from repro.live.chaos import LinkShaper
from repro.live.network import LiveNetwork
from repro.live.scheduler import RealtimeScheduler
from repro.live.wire import to_wire
from repro.mempool import MEMPOOL_CLASSES, NativeMempool, SharedPendingPool
from repro.metrics import MetricsHub
from repro.replica import Replica
from repro.sim.interfaces import Scheduler

#: Extra wall-clock seconds a replica keeps serving after ``end_time``,
#: letting in-flight commits from slower peers drain before shutdown.
SHUTDOWN_GRACE = 0.5


class RecordingMetricsHub(MetricsHub):
    """MetricsHub that additionally keys latency pairs by block id.

    The orchestrator deduplicates commits *across* replicas by block id;
    to rebuild the merged latency digest it needs the winning commit's
    own ``(latency, weight)`` pairs, which the base hub flattens away.
    """

    def __init__(self, sim: Scheduler) -> None:
        super().__init__(sim)
        self.commit_latencies: dict[int, list[tuple[float, float]]] = {}

    def record_commit(self, block_id, tx_count, microblock_count,
                      latencies, commit_time=None) -> bool:
        fresh = super().record_commit(
            block_id, tx_count, microblock_count, latencies, commit_time
        )
        if fresh:
            self.commit_latencies[block_id] = [
                (latency, weight) for latency, weight in latencies
            ]
        return fresh


class LiveRecorder:
    """Replica observer streaming wire-encoded protocol events to disk.

    The orchestrator replays the merged, time-sorted event stream from
    all replicas through the real :class:`repro.verification` oracles
    (see :mod:`repro.live.verify`). Encoding through :func:`to_wire`
    keeps the record JSON-able and double-checks event purity.
    ``on_block_resolved`` is not recorded: ``Block`` objects are local
    assembly state, not wire data, and no live oracle consumes them.

    Events are written line-by-line with an explicit flush so they
    survive SIGKILL: a crash loses at most work the kernel never saw,
    and a microblock's creation line is flushed *before* the mempool
    broadcasts it (``notify_microblock`` precedes ``_emit``), so the
    ledger oracle can never see a commit of a microblock whose creation
    record died with its origin.
    """

    def __init__(self, scheduler: Scheduler, node_id: int,
                 events_path: str) -> None:
        self._scheduler = scheduler
        self._node_id = node_id
        self._file = open(events_path, "w", encoding="utf-8")
        self.events_recorded = 0

    def _record(self, kind: str, data) -> None:
        # One dumps + one write: json.dump streaming into the file
        # handle costs dozens of tiny TextIOWrapper writes per event,
        # which at saturation charged the recorder ~25% of replica CPU.
        line = json.dumps({
            "t": self._scheduler.now,
            "node": self._node_id,
            "kind": kind,
            "data": to_wire(data),
        })
        self._file.write(line + "\n")
        self._file.flush()
        self.events_recorded += 1

    def on_local_commit(self, replica, proposal) -> None:
        self._record("commit", proposal)

    def on_microblock_created(self, replica, microblock) -> None:
        self._record("mb", microblock)

    def on_block_resolved(self, replica, block) -> None:
        pass

    def close(self) -> None:
        self._file.close()


def build_replica(
    spec: dict, scheduler: Scheduler, network: LiveNetwork
) -> tuple[Replica, LiveRecorder]:
    """Wire one replica from a spawn spec (mirrors ``build_experiment``)."""
    protocol = ProtocolConfig.from_dict(spec["protocol"])
    node_id = spec["node_id"]
    metrics = RecordingMetricsHub(scheduler)
    replica = Replica(
        node_id=node_id,
        config=protocol,
        sim=scheduler,
        network=network,
        rng=random.Random((spec["seed"] << 16) | node_id),
        metrics=metrics,
        leader_set=tuple(range(protocol.n)),
    )
    mempool_cls = MEMPOOL_CLASSES[protocol.mempool]
    if issubclass(mempool_cls, NativeMempool):
        mempool = mempool_cls(
            replica, protocol, SharedPendingPool(protocol.tx_payload)
        )
    else:
        mempool = mempool_cls(replica, protocol)
    consensus = CONSENSUS_CLASSES[protocol.consensus](
        replica, mempool, protocol
    )
    generation = spec.get("generation", 0)
    if generation:
        # A respawned interpreter forgets its local counters; give each
        # incarnation a disjoint id range (2^32 ids apiece) so the
        # (origin, counter) microblock *and* block ids keep the
        # uniqueness the paper's content-hash ids have by construction.
        # Without the block rebase, peers silently drop the new
        # incarnation's proposals as duplicates of pre-crash ids and
        # every view it leads times out.
        mempool.rebase_microblock_ids(generation << 32)
        consensus.rebase_block_ids(generation << 32)
    executor = None
    if spec.get("durability"):
        # The data dir is keyed by node id, NOT generation: a respawned
        # incarnation recovers from the directory its predecessor wrote
        # (checkpoint + WAL tail), which is the whole point.
        executor = DurableKVStore(
            os.path.join(spec["data_root"], f"replica-{node_id}"),
            config=DurabilityConfig.from_spec(spec["durability"]),
        )
    replica.attach(mempool, consensus, executor)
    recorder = LiveRecorder(scheduler, node_id, spec["events_path"])
    replica.observer = recorder
    network.client_handler = (
        lambda envelope: replica.on_client_batch(envelope.payload)
    )
    return replica, recorder


async def _run(spec: dict) -> dict:
    loop = asyncio.get_running_loop()
    scheduler = RealtimeScheduler(loop, epoch=spec["epoch"])
    ports = {int(node): port for node, port in spec["ports"].items()}
    shaper = None
    if spec.get("shaping"):
        generation = spec.get("generation", 0)
        shaper = LinkShaper(
            spec["node_id"], spec["shaping"], scheduler,
            random.Random(
                (spec["seed"] << 24) | (generation << 16) | spec["node_id"]
            ),
        )
    network = LiveNetwork(
        spec["node_id"], ports, scheduler, shaper=shaper,
        codec=spec.get("wire_codec", "binary"),
    )
    await network.start()

    replica, recorder = build_replica(spec, scheduler, network)

    stop = asyncio.Event()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, stop.set)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass

    # All processes share the epoch; starting consensus at t=0 on each
    # replica keeps their view timers roughly in phase. A respawned
    # replica (chaos restart) is past t=0 already and starts at once.
    await scheduler.sleep_until(0.0)
    replica.start()
    executor = replica.executor
    if (
        executor is not None
        and spec.get("generation", 0)
        and getattr(executor.config, "snapshot_transfer", False)
    ):
        # A respawned incarnation recovered from its own disk; peers may
        # have moved the commit frontier while it was down. The request
        # is queued per peer and delivered once TCP (re)connects.
        replica.request_state_snapshot()

    remaining = spec["end_time"] + SHUTDOWN_GRACE - scheduler.now
    if remaining > 0:
        try:
            await asyncio.wait_for(stop.wait(), timeout=remaining)
        except asyncio.TimeoutError:
            pass

    replica.consensus.suspend()
    await network.close()
    recorder.close()
    if executor is not None:
        executor.close()

    metrics = replica.metrics
    return {
        "node_id": spec["node_id"],
        "generation": spec.get("generation", 0),
        "wire_codec": network.codec.name,
        "commits": [
            {
                "block_id": rec.block_id,
                "commit_time": rec.commit_time,
                "tx_count": rec.tx_count,
                "microblock_count": rec.microblock_count,
                "latencies": metrics.commit_latencies.get(rec.block_id, []),
            }
            for rec in metrics.commits
        ],
        "view_changes": metrics.view_change_count,
        "bytes_in": network.bytes_in,
        "bytes_out": network.bytes_out,
        "messages_delivered": network.stats.messages_delivered,
        "frames_dropped": network.stats.frames_dropped,
        "queue_high_watermark": network.stats.queue_high_watermark,
        "reconnects": network.stats.reconnects,
        "frames_shed": shaper.frames_shed if shaper is not None else 0,
        "recovery": (
            executor.recovery.to_dict() if executor is not None else None
        ),
        "executed_height": (
            executor.last_height if executor is not None else None
        ),
        "tx_applied": executor.tx_applied if executor is not None else None,
        "state_digest": (
            executor.state_digest() if executor is not None else None
        ),
        "checkpoints_written": (
            executor.checkpoints_written if executor is not None else None
        ),
        "checkpoint_bytes": (
            executor.checkpoint_bytes if executor is not None else None
        ),
        "snapshot_installs": (
            executor.snapshot_installs if executor is not None else None
        ),
        "snapshots_served": replica.snapshots_served,
    }


def replica_main(spec: dict) -> None:
    """Process entry point: run one replica, write its result JSON.

    Set ``REPRO_LIVE_PROFILE=<dir>`` to cProfile the whole replica
    lifetime and drop ``replica-<id>-g<gen>.prof`` into that directory —
    the saturation bench's way of asking *where* a knee comes from.
    """
    profile_dir = os.environ.get("REPRO_LIVE_PROFILE")
    profiler = None
    if profile_dir:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    result = asyncio.run(_run(spec))
    if profiler is not None:
        profiler.disable()
        stem = (
            f"replica-{spec['node_id']}-g{spec.get('generation', 0)}.prof"
        )
        profiler.dump_stats(os.path.join(profile_dir, stem))
    with open(spec["result_path"], "w", encoding="utf-8") as handle:
        json.dump(result, handle)
