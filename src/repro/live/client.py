"""Live client driver: the open-loop workload over TCP.

Reuses :class:`repro.workload.WorkloadGenerator` — the exact tick/carry
rate math of the simulated client — by pointing it at proxy receivers
whose ``on_client_batch`` ships the batch to the real replica as a
``client.batch`` frame. Runs inside the orchestrator process.
"""

from __future__ import annotations

import asyncio

from repro.harness.config import ExperimentConfig
from repro.live.network import LiveNetwork
from repro.live.scheduler import RealtimeScheduler
from repro.live.wire import CLIENT_BATCH
from repro.sim.interfaces import Channel
from repro.types import TxBatch
from repro.workload import UniformSelector, WorkloadGenerator, ZipfSelector

#: Node id the client stamps as frame source. Replicas never route on
#: it (``client.batch`` has its own dispatch hook), it only has to stay
#: clear of real replica ids.
CLIENT_ID = -1


class _ReplicaProxy:
    """Stands in for one replica on the client side of the wire."""

    def __init__(self, network: LiveNetwork, node_id: int) -> None:
        self._network = network
        self._node_id = node_id

    def on_client_batch(self, batch: TxBatch) -> None:
        self._network.send(
            CLIENT_ID, self._node_id, CLIENT_BATCH,
            batch.total_bytes, batch, Channel.DATA,
        )


def _make_selector(config: ExperimentConfig):
    n = config.protocol.n
    if config.selector == "uniform":
        return UniformSelector(n)
    if config.selector == "zipf1":
        return ZipfSelector(n, s=1.01, v=1.0)
    return ZipfSelector(n, s=1.01, v=10.0)


async def run_client(
    config: ExperimentConfig,
    ports: dict[int, int],
    epoch: float,
    wire_codec: str = "binary",
) -> int:
    """Submit the workload until ``config.end_time``; returns tx emitted."""
    loop = asyncio.get_running_loop()
    scheduler = RealtimeScheduler(loop, epoch=epoch)
    network = LiveNetwork(CLIENT_ID, ports, scheduler, codec=wire_codec)
    await network.start(listen=False)

    proxies = [_ReplicaProxy(network, node) for node in sorted(ports)]
    generator = WorkloadGenerator(
        sim=scheduler,
        replicas=proxies,
        rate_tps=config.rate_tps,
        tx_payload=config.protocol.tx_payload,
        selector=_make_selector(config),
        tick=config.tick,
    )

    await scheduler.sleep_until(0.0)
    generator.start()

    await scheduler.sleep_until(config.end_time)
    generator.stop()
    await network.close()
    return generator.emitted_tx_count
