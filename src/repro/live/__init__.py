"""Live runtime: the real protocol stack over asyncio TCP.

This package runs the **unmodified** consensus + mempool + replica
classes from :mod:`repro` over real sockets, one OS process per replica.
It provides the second backend for the scheduler/transport seam defined
in :mod:`repro.sim.interfaces`:

========================  ==========================  ==========================
surface                   simulated backend           live backend
========================  ==========================  ==========================
:class:`Scheduler`        ``repro.sim.engine``        :class:`RealtimeScheduler`
:class:`Transport`        ``repro.sim.network``       :class:`LiveNetwork`
message encoding          in-memory object passing    :mod:`repro.live.wire`
workload                  ``repro.workload``          :mod:`repro.live.client`
process model             one process, n replicas     n processes + 1 client
========================  ==========================  ==========================

Entry point: :func:`repro.live.orchestrator.run_live` (CLI:
``python -m repro live``).

Chaos runs reuse the declarative :class:`repro.faults.FaultSchedule`:
crash/restart become SIGKILL + respawn (:class:`LiveFaultInjector`),
link faults become per-frame egress shaping (:class:`LinkShaper`) — see
:mod:`repro.live.chaos`.
"""

from repro.live.chaos import LinkShaper, LiveFaultInjector
from repro.live.orchestrator import LiveConfig, LiveRunResult, run_live
from repro.live.scheduler import RealtimeScheduler
from repro.live.wire import (
    CODECS,
    MESSAGE_REGISTRY,
    WireCodec,
    WireError,
    decode_frame,
    decode_frame_binary,
    encode_frame,
    encode_frame_binary,
    from_wire,
    get_codec,
    to_wire,
)

__all__ = [
    "LiveConfig",
    "LiveRunResult",
    "run_live",
    "LinkShaper",
    "LiveFaultInjector",
    "RealtimeScheduler",
    "MESSAGE_REGISTRY",
    "CODECS",
    "WireCodec",
    "WireError",
    "get_codec",
    "encode_frame",
    "decode_frame",
    "encode_frame_binary",
    "decode_frame_binary",
    "to_wire",
    "from_wire",
]
