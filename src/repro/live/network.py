"""Asyncio TCP :class:`Transport` backend.

One :class:`LiveNetwork` instance serves exactly one replica process: it
listens on its own localhost port and keeps one outbound connection per
peer. Frames are the length-prefixed bodies of :mod:`repro.live.wire`
in the run's configured codec (binary v2 by default, JSON v1 for
comparison); every connection opens with the codec preamble, and an
inbound stream announcing a *different* codec is rejected — a live run
is single-codec by construction. Per-peer, per-channel FIFO ordering
falls out of TCP plus the single writer task per link, satisfying the
:class:`Transport` ordering contract the protocol recovery paths rely
on.

``send``/``broadcast`` stay synchronous (the protocol code is the same
code that runs in-sim): they encode the frame immediately — which is
where the codec's purity assertion fires — and hand the bytes to the
peer link's writer task. ``broadcast`` encodes **once** and shares the
frame bytes across every link instead of paying the codec per
recipient, and send accounting only counts frames the link actually
accepted: a frame shed by backpressure never inflates
``messages_sent``/``bytes_sent``.

Robustness properties (the live-chaos hardening):

* **Bounded send queues.** Each link keeps two bounded deques — one for
  CONSENSUS/CONTROL frames, one for DATA — and the writer drains the
  priority queue first. When a queue is full the new frame is dropped
  (``NetworkStats.frames_dropped``), so a dead or throttled peer costs a
  bounded amount of memory and data backlog never starves consensus
  traffic. Message loss is within the Transport contract; the protocol's
  retransmission paths recover.
* **Write coalescing.** The writer drains a bounded batch of queued
  frames per ``writer.drain()`` (:data:`PUMP_BATCH_FRAMES` frames or
  :data:`PUMP_BATCH_BYTES` bytes, whichever first), so a burst costs
  one await and lets TCP coalesce small frames into full segments
  instead of one segment per vote. Shaping semantics stay per-frame:
  the pending batch is flushed before any shaper hold, and every frame
  still pays its own delay/throttle.
* **Reconnection.** A link whose connection fails or resets retries
  forever with exponential backoff plus jitter — not just during the
  startup window — so a replica SIGKILLed and respawned mid-run is
  re-reachable as soon as it rebinds its port.
* **Liveness view.** ``liveness()`` reports which peers currently hold
  an established connection; writers never block protocol callbacks, so
  a dead peer degrades into dropped frames instead of a hang.
* **Shaping hook.** An optional :class:`repro.live.chaos.LinkShaper`
  drops frames at send time (partitions, loss windows) and delays them
  at write time (latency spikes, bandwidth squeezes), realizing the
  chaos layer's network faults on real sockets.
"""

from __future__ import annotations

import asyncio
import random
from collections import deque
from typing import Optional, TYPE_CHECKING, Union

from repro.live.wire import (
    CLIENT_BATCH,
    FrameDecoder,
    WireCodec,
    WireError,
    get_codec,
)
from repro.sim.interfaces import Channel, Envelope, Handler, Scheduler, Transport
from repro.sim.network import NetworkStats

if TYPE_CHECKING:  # pragma: no cover
    from repro.live.chaos import LinkShaper

#: First retry delay after a failed connect; doubles per attempt.
CONNECT_RETRY_DELAY = 0.05
#: Backoff cap — a downed peer is probed at least this often (plus
#: jitter), bounding how stale the liveness view can get.
CONNECT_RETRY_MAX = 1.0

#: Bounded send-queue depths (frames). DATA carries microblock bodies —
#: the bulk — and is capped tighter than the consensus/control queue so
#: backpressure sheds payload before it sheds votes.
DATA_QUEUE_CAP = 1024
PRIORITY_QUEUE_CAP = 4096

#: Write-coalescing bounds: frames joined into one write per
#: ``drain()`` await. The byte bound keeps a batch of jumbo frames from
#: monopolizing the loop; the frame bound caps the join list for bursts
#: of tiny frames (binary votes/acks run ~50-100 bytes apiece).
PUMP_BATCH_FRAMES = 512
PUMP_BATCH_BYTES = 256 * 1024


class _PeerLink:
    """One outbound connection: bounded frame queues + a writer task.

    The queues are plain deques rather than ``asyncio.Queue`` because
    ``send`` must stay synchronous and the drop policy needs to inspect
    both queues' depths; an :class:`asyncio.Event` wakes the writer.
    """

    def __init__(
        self,
        dst: int,
        host: str,
        port: int,
        stats: NetworkStats,
        shaper: Optional["LinkShaper"] = None,
        codec: Union[str, WireCodec] = "binary",
    ) -> None:
        self.dst = dst
        self.host = host
        self.port = port
        self.codec = get_codec(codec)
        self.task: Optional[asyncio.Task] = None
        self.bytes_out = 0
        self.connected = False
        self.reconnects = 0
        self._stats = stats
        self._shaper = shaper
        self._priority: deque[tuple[bytes, Channel]] = deque()
        self._data: deque[tuple[bytes, Channel]] = deque()
        self._wake = asyncio.Event()
        self._closing = False
        # Backoff jitter only — shaping decisions never draw from this.
        self._rng = random.Random()

    # -- producer side (synchronous, protocol thread) -------------------

    def enqueue(self, frame: bytes, channel: Channel) -> bool:
        """Queue one frame; returns False when backpressure drops it."""
        if self._closing:
            return False
        if channel is Channel.DATA:
            queue, cap = self._data, DATA_QUEUE_CAP
        else:
            queue, cap = self._priority, PRIORITY_QUEUE_CAP
        if len(queue) >= cap:
            self._stats.frames_dropped += 1
            return False
        queue.append((frame, channel))
        depth = len(self._priority) + len(self._data)
        if depth > self._stats.queue_high_watermark:
            self._stats.queue_high_watermark = depth
        self._wake.set()
        return True

    @property
    def queued(self) -> int:
        return len(self._priority) + len(self._data)

    def close(self) -> None:
        """Ask the writer to drain its queues and exit."""
        self._closing = True
        self._wake.set()

    # -- writer task -----------------------------------------------------

    async def run(self) -> None:
        writer = None
        try:
            while True:
                writer = await self._connect()
                if writer is None:  # closed while unreachable
                    return
                self.connected = True
                try:
                    # Every TCP stream opens with the codec preamble so
                    # the acceptor knows the frame format (and rejects a
                    # mixed-codec peer) before the first frame.
                    writer.write(self.codec.preamble)
                    self.bytes_out += len(self.codec.preamble)
                    drained = await self._pump(writer)
                except (ConnectionError, OSError):
                    # Peer process exited or reset mid-write: the frame
                    # being written is lost (within the Transport
                    # contract); reconnect and keep going.
                    drained = False
                finally:
                    self.connected = False
                    writer.close()
                    writer = None
                if drained:
                    return
                self.reconnects += 1
                self._stats.reconnects += 1
        except asyncio.CancelledError:
            # Loop teardown (LiveNetwork.close cancelling a stuck link).
            pass
        finally:
            self.connected = False
            if writer is not None:
                writer.close()

    async def _pump(self, writer: asyncio.StreamWriter) -> bool:
        """Write queued frames until closed (True) or the link drops.

        Frames are written in coalesced batches — up to
        :data:`PUMP_BATCH_FRAMES` frames or :data:`PUMP_BATCH_BYTES`
        bytes joined into a **single** ``write()`` per ``drain()``, so
        a burst costs one transport call and one socket send instead of
        one per frame — while shaping stays per-frame: before a shaper
        hold, the pending batch is flushed so already-written frames
        hit the socket at their unshaped time, then the held frame pays
        its full delay exactly as in the unbatched path.
        """
        priority, data = self._priority, self._data
        while True:
            if priority:
                frame, channel = priority.popleft()
            elif data:
                frame, channel = data.popleft()
            else:
                if self._closing:
                    return True
                self._wake.clear()
                if not (priority or data or self._closing):
                    await self._wake.wait()
                continue
            parts: list[bytes] = []
            batch_bytes = 0
            while True:
                if self._shaper is not None:
                    delay = self._shaper.write_delay(
                        self.dst, len(frame), channel
                    )
                    if delay > 0:
                        if parts:
                            writer.write(b"".join(parts))
                            await writer.drain()
                            parts = []
                            batch_bytes = 0
                        await asyncio.sleep(delay)
                parts.append(frame)
                self.bytes_out += len(frame)
                batch_bytes += len(frame)
                if (
                    len(parts) >= PUMP_BATCH_FRAMES
                    or batch_bytes >= PUMP_BATCH_BYTES
                ):
                    break
                if priority:
                    frame, channel = priority.popleft()
                elif data:
                    frame, channel = data.popleft()
                else:
                    break
            if parts:
                writer.write(parts[0] if len(parts) == 1 else b"".join(parts))
            await writer.drain()

    async def _connect(self) -> Optional[asyncio.StreamWriter]:
        """Connect with exponential backoff + jitter until closed.

        Unlike a startup-only retry window, this never gives up: a peer
        restarted mid-run (chaos respawn, operator restart) is picked
        back up as soon as it listens again.
        """
        backoff = CONNECT_RETRY_DELAY
        while not self._closing:
            try:
                _, writer = await asyncio.open_connection(self.host, self.port)
                return writer
            except (ConnectionError, OSError):
                delay = backoff * (0.5 + self._rng.random())
                backoff = min(backoff * 2.0, CONNECT_RETRY_MAX)
                await asyncio.sleep(delay)
        return None


class LiveNetwork(Transport):
    """TCP message fabric for one replica (or the client driver)."""

    def __init__(
        self,
        node_id: int,
        ports: dict[int, int],
        scheduler: Scheduler,
        host: str = "127.0.0.1",
        shaper: Optional["LinkShaper"] = None,
        codec: Union[str, WireCodec] = "binary",
    ) -> None:
        self.node_id = node_id
        self.ports = ports
        self.host = host
        self.scheduler = scheduler
        self.shaper = shaper
        self.codec = get_codec(codec)
        self.stats = NetworkStats()
        self.bytes_in = 0
        self._handler: Optional[Handler] = None
        #: Hook for the synthetic ``client.batch`` kind, which must not
        #: reach ``Replica.handle`` (it only routes protocol kinds).
        self.client_handler: Optional[Handler] = None
        self._links: dict[int, _PeerLink] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self._accepted: set[asyncio.StreamWriter] = set()
        self._closed = False

    @property
    def bytes_out(self) -> int:
        return sum(link.bytes_out for link in self._links.values())

    def liveness(self) -> dict[int, bool]:
        """Which peers hold an established outbound connection right now.

        The heartbeat is the TCP connection itself: a downed peer's link
        flips to False within one write or one backoff probe
        (≤ :data:`CONNECT_RETRY_MAX` plus jitter), and back to True as
        soon as a reconnect lands.
        """
        return {node: link.connected for node, link in self._links.items()}

    # -- lifecycle -----------------------------------------------------

    async def start(self, listen: bool = True) -> None:
        """Bind the listening socket and spawn peer links.

        The client driver passes ``listen=False``: it only writes.
        """
        if listen:
            self._server = await asyncio.start_server(
                self._accept, self.host, self.ports[self.node_id]
            )
        loop = asyncio.get_running_loop()
        for node, port in self.ports.items():
            if node == self.node_id:
                continue
            link = _PeerLink(
                node, self.host, port, self.stats, shaper=self.shaper,
                codec=self.codec,
            )
            link.task = loop.create_task(link.run())
            self._links[node] = link

    async def close(self, drain_timeout: float = 5.0) -> None:
        """Stop the fabric, draining queued frames where peers are up.

        Links to unreachable peers (and links whose shaper is throttling
        them below the drain budget) are cancelled after
        ``drain_timeout`` so shutdown never hangs on a dead or squeezed
        connection.
        """
        self._closed = True
        for link in self._links.values():
            link.close()
        tasks = [link.task for link in self._links.values() if link.task]
        if tasks:
            _, pending = await asyncio.wait(tasks, timeout=drain_timeout)
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Drop accepted inbound connections too: a process exit would
        # close them at the kernel; an in-process close (tests, client
        # driver) must look the same to peers, or their links report a
        # closed endpoint as live forever.
        for writer in list(self._accepted):
            writer.close()

    # -- Transport surface ---------------------------------------------

    def register(self, node: int, handler: Handler) -> None:
        if node != self.node_id:
            raise ValueError(
                f"live network of node {self.node_id} cannot host node {node}"
            )
        if self._handler is not None:
            raise ValueError(f"node {node} already registered")
        self._handler = handler

    def send(
        self,
        src: int,
        dst: int,
        kind: str,
        size_bytes: float,
        payload: object,
        channel: Channel = Channel.DATA,
    ) -> None:
        if self._closed:
            return
        if dst == self.node_id:
            # Loopback: deliver on the next loop tick, like the
            # simulator's zero-delay local delivery — never re-entrantly.
            # Loopback is never shaped: partitions/loss model the fabric
            # between processes, and a replica always reaches itself.
            envelope = Envelope(
                src, dst, kind, 0.0, payload, channel, self.scheduler.now
            )
            self.scheduler.schedule(0.0, lambda: self._dispatch(envelope))
            return
        link = self._links.get(dst)
        if link is None:
            raise ValueError(f"send to unknown node {dst}")
        if self.shaper is not None and self.shaper.drops(
            src, dst, kind, channel
        ):
            self.stats.messages_dropped += 1
            return
        frame = self.codec.encode(src, kind, channel, payload)
        # Count only what the link accepted: a frame shed by
        # backpressure was never sent, and pretending otherwise skews
        # the per-replica bandwidth tables exactly when they matter
        # (saturated or chaos runs).
        if link.enqueue(frame, channel):
            self.stats.record_send(src, kind, len(frame))

    def broadcast(
        self,
        src: int,
        kind: str,
        size_bytes: float,
        payload: object,
        channel: Channel = Channel.DATA,
        recipients: Optional[list[int]] = None,
        include_self: bool = False,
    ) -> None:
        """Fan one payload out to ``recipients`` (default: all peers).

        The frame is encoded **once** and the same bytes are enqueued on
        every link — the per-recipient codec cost of the naive
        ``send``-per-peer loop was pure waste, and on the broadcast-heavy
        PAB path it dominated the send side.
        """
        if self._closed:
            return
        if recipients is None:
            recipients = [node for node in self.ports if node != src]
        frame: Optional[bytes] = None
        for dst in recipients:
            if dst == src and not include_self:
                continue
            if dst == self.node_id:
                # Loopback keeps the object path (no codec round-trip).
                self.send(src, dst, kind, size_bytes, payload, channel)
                continue
            link = self._links.get(dst)
            if link is None:
                raise ValueError(f"send to unknown node {dst}")
            if self.shaper is not None and self.shaper.drops(
                src, dst, kind, channel
            ):
                self.stats.messages_dropped += 1
                continue
            if frame is None:
                frame = self.codec.encode(src, kind, channel, payload)
            if link.enqueue(frame, channel):
                self.stats.record_send(src, kind, len(frame))
        if include_self and src not in recipients:
            self.send(src, src, kind, size_bytes, payload, channel)

    # -- receive path --------------------------------------------------

    async def _accept(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        # Every inbound stream must open with the preamble matching this
        # node's codec; a mixed-codec (or non-wire) peer raises WireError
        # on the first read and the stream is abandoned below.
        decoder = FrameDecoder(self.codec, negotiate=True)
        self._accepted.add(writer)
        try:
            while True:
                data = await reader.read(64 * 1024)
                if not data:
                    break
                self.bytes_in += len(data)
                for src, kind, channel, payload in decoder.feed(data):
                    envelope = Envelope(
                        src, self.node_id, kind, 0.0, payload, channel,
                        self.scheduler.now,
                    )
                    self._dispatch(envelope)
        except (ConnectionError, WireError):
            # A reset peer or desynced stream only loses that stream's
            # remaining messages — again within the Transport contract.
            pass
        except asyncio.CancelledError:
            # Loop teardown mid-read (asyncio.run cancelling leftover
            # tasks); swallowing keeps shutdown quiet.
            pass
        finally:
            self._accepted.discard(writer)
            writer.close()

    def _dispatch(self, envelope: Envelope) -> None:
        if self._closed:
            self.stats.messages_dropped += 1
            return
        if envelope.kind == CLIENT_BATCH:
            if self.client_handler is not None:
                self.stats.messages_delivered += 1
                self.client_handler(envelope)
            return
        if self._handler is None:
            self.stats.messages_dropped += 1
            return
        self.stats.messages_delivered += 1
        self._handler(envelope)
