"""Asyncio TCP :class:`Transport` backend.

One :class:`LiveNetwork` instance serves exactly one replica process: it
listens on its own localhost port and keeps one outbound connection per
peer. Frames are the length-prefixed JSON documents of
:mod:`repro.live.wire`; per-peer FIFO ordering falls out of TCP plus the
single writer task per link, satisfying the :class:`Transport` ordering
contract the protocol recovery paths rely on.

``send``/``broadcast`` stay synchronous (the protocol code is the same
code that runs in-sim): they encode the frame immediately — which is
where the codec's purity assertion fires — and hand the bytes to the
peer link's writer task via an unbounded queue. All protocol callbacks
run on the owning event loop's thread, so no locking is needed.
"""

from __future__ import annotations

import asyncio
from typing import Optional

from repro.live.wire import CLIENT_BATCH, FrameDecoder, WireError, encode_frame
from repro.sim.interfaces import Channel, Envelope, Handler, Scheduler, Transport
from repro.sim.network import NetworkStats

#: How long a peer link keeps retrying its initial connection. Covers
#: the orchestrator's startup window where replicas come up in any order.
CONNECT_TIMEOUT = 15.0
CONNECT_RETRY_DELAY = 0.05


class _PeerLink:
    """One outbound connection: an unbounded frame queue + a writer task."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self.queue: asyncio.Queue[Optional[bytes]] = asyncio.Queue()
        self.task: Optional[asyncio.Task] = None
        self.bytes_out = 0

    async def run(self) -> None:
        writer = None
        try:
            writer = await self._connect()
            if writer is None:
                return
            while True:
                frame = await self.queue.get()
                if frame is None:  # shutdown sentinel
                    break
                writer.write(frame)
                self.bytes_out += len(frame)
                await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            # Peer process exited (shutdown or crash): drop the link.
            # Message loss is within the Transport contract.
            pass
        finally:
            if writer is not None:
                writer.close()

    async def _connect(self):
        loop = asyncio.get_running_loop()
        deadline = loop.time() + CONNECT_TIMEOUT
        while True:
            try:
                _, writer = await asyncio.open_connection(self.host, self.port)
                return writer
            except ConnectionError:
                if loop.time() >= deadline:
                    return None
                await asyncio.sleep(CONNECT_RETRY_DELAY)


class LiveNetwork(Transport):
    """TCP message fabric for one replica (or the client driver)."""

    def __init__(
        self,
        node_id: int,
        ports: dict[int, int],
        scheduler: Scheduler,
        host: str = "127.0.0.1",
    ) -> None:
        self.node_id = node_id
        self.ports = ports
        self.host = host
        self.scheduler = scheduler
        self.stats = NetworkStats()
        self.bytes_in = 0
        self._handler: Optional[Handler] = None
        #: Hook for the synthetic ``client.batch`` kind, which must not
        #: reach ``Replica.handle`` (it only routes protocol kinds).
        self.client_handler: Optional[Handler] = None
        self._links: dict[int, _PeerLink] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self._closed = False

    @property
    def bytes_out(self) -> int:
        return sum(link.bytes_out for link in self._links.values())

    # -- lifecycle -----------------------------------------------------

    async def start(self, listen: bool = True) -> None:
        """Bind the listening socket and spawn peer links.

        The client driver passes ``listen=False``: it only writes.
        """
        if listen:
            self._server = await asyncio.start_server(
                self._accept, self.host, self.ports[self.node_id]
            )
        loop = asyncio.get_running_loop()
        for node, port in self.ports.items():
            if node == self.node_id:
                continue
            link = _PeerLink(self.host, port)
            link.task = loop.create_task(link.run())
            self._links[node] = link

    async def close(self) -> None:
        self._closed = True
        for link in self._links.values():
            link.queue.put_nowait(None)
        tasks = [link.task for link in self._links.values() if link.task]
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    # -- Transport surface ---------------------------------------------

    def register(self, node: int, handler: Handler) -> None:
        if node != self.node_id:
            raise ValueError(
                f"live network of node {self.node_id} cannot host node {node}"
            )
        if self._handler is not None:
            raise ValueError(f"node {node} already registered")
        self._handler = handler

    def send(
        self,
        src: int,
        dst: int,
        kind: str,
        size_bytes: float,
        payload: object,
        channel: Channel = Channel.DATA,
    ) -> None:
        if self._closed:
            return
        if dst == self.node_id:
            # Loopback: deliver on the next loop tick, like the
            # simulator's zero-delay local delivery — never re-entrantly.
            envelope = Envelope(
                src, dst, kind, 0.0, payload, channel, self.scheduler.now
            )
            self.scheduler.schedule(0.0, lambda: self._dispatch(envelope))
            return
        link = self._links.get(dst)
        if link is None:
            raise ValueError(f"send to unknown node {dst}")
        frame = encode_frame(src, kind, channel, payload)
        self.stats.record_send(src, kind, len(frame))
        link.queue.put_nowait(frame)

    def broadcast(
        self,
        src: int,
        kind: str,
        size_bytes: float,
        payload: object,
        channel: Channel = Channel.DATA,
        recipients: Optional[list[int]] = None,
        include_self: bool = False,
    ) -> None:
        if recipients is None:
            recipients = [node for node in self.ports if node != src]
        for dst in recipients:
            if dst == src and not include_self:
                continue
            self.send(src, dst, kind, size_bytes, payload, channel)
        if include_self and src not in recipients:
            self.send(src, src, kind, size_bytes, payload, channel)

    # -- receive path --------------------------------------------------

    async def _accept(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        decoder = FrameDecoder()
        try:
            while True:
                data = await reader.read(64 * 1024)
                if not data:
                    break
                self.bytes_in += len(data)
                for src, kind, channel, payload in decoder.feed(data):
                    envelope = Envelope(
                        src, self.node_id, kind, 0.0, payload, channel,
                        self.scheduler.now,
                    )
                    self._dispatch(envelope)
        except (ConnectionError, WireError):
            # A reset peer or desynced stream only loses that stream's
            # remaining messages — again within the Transport contract.
            pass
        except asyncio.CancelledError:
            # Loop teardown mid-read (asyncio.run cancelling leftover
            # tasks); swallowing keeps shutdown quiet.
            pass
        finally:
            writer.close()

    def _dispatch(self, envelope: Envelope) -> None:
        if self._closed:
            self.stats.messages_dropped += 1
            return
        if envelope.kind == CLIENT_BATCH:
            if self.client_handler is not None:
                self.stats.messages_delivered += 1
                self.client_handler(envelope)
            return
        if self._handler is None:
            self.stats.messages_dropped += 1
            return
        self.stats.messages_delivered += 1
        self._handler(envelope)
