"""Replay live protocol events through the real invariant oracles.

Every replica process records its commits and microblock creations as
wire-encoded events (:class:`repro.live.replica_proc.LiveRecorder`).
The orchestrator merges the streams, sorts by wall-clock time, decodes
them back into protocol objects, and feeds them through the *unchanged*
:class:`~repro.verification.oracles.SafetyOracle` and
:class:`~repro.verification.oracles.LedgerOracle` — the acceptance bar
is that the live run satisfies the same invariants the simulator is held
to.

The availability and liveness oracles are not replayed: the first
inspects live mempool stores (gone once the processes exit) and the
second reasons about injected fault windows (none in live runs yet).
"""

from __future__ import annotations

from types import SimpleNamespace

from repro.live.wire import from_wire
from repro.verification.oracles import LedgerOracle, SafetyOracle, Violation

__all__ = ["verify_events"]


class _LiveSuite:
    """Duck-typed stand-in for :class:`OracleSuite` during replay.

    Oracles touch exactly three suite surfaces when reporting and
    finalizing: ``record``, ``now``, and
    ``experiment.generator.emitted_tx_count``. ``now`` is stepped to
    each event's recorded time so violation timestamps point at the
    offending event.
    """

    def __init__(self, emitted_tx: int, protocol=None) -> None:
        self.violations: list[Violation] = []
        self.now = 0.0
        self.experiment = SimpleNamespace(
            generator=SimpleNamespace(emitted_tx_count=emitted_tx),
            config=SimpleNamespace(protocol=protocol),
        )

    def record(self, violation: Violation) -> None:
        self.violations.append(violation)


def verify_events(
    events: list[dict], emitted_tx: int, protocol=None
) -> list[Violation]:
    """Run the safety and SMP-integrity oracles over recorded events.

    ``events`` is the merged per-replica record list
    (``{"t", "node", "kind", "data"}`` with wire-encoded data); returns
    every violation found, empty meaning the live run passed. Passing
    the run's :class:`~repro.config.ProtocolConfig` arms the
    shard-aware ledger checks for ``sharded-stratus`` runs.
    """
    suite = _LiveSuite(emitted_tx, protocol)
    oracles = [SafetyOracle(), LedgerOracle()]
    for oracle in oracles:
        oracle.bind(suite)
        oracle.on_attach()

    for event in sorted(events, key=lambda e: (e["t"], e["node"])):
        suite.now = event["t"]
        replica = SimpleNamespace(node_id=event["node"])
        data = from_wire(event["data"])
        for oracle in oracles:
            if event["kind"] == "commit":
                oracle.on_local_commit(replica, data)
            elif event["kind"] == "mb":
                oracle.on_microblock_created(replica, data)

    for oracle in oracles:
        oracle.finalize()
    return suite.violations
