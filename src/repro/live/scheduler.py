"""Wall-clock :class:`Scheduler` backend over an asyncio event loop."""

from __future__ import annotations

import asyncio
import time
from typing import Callable, Optional

from repro.sim.interfaces import Scheduler


class LiveTimer:
    """Cancellable handle over ``loop.call_later`` (:class:`TimerHandle`)."""

    __slots__ = ("_handle", "_deadline", "_fired")

    def __init__(self) -> None:
        self._handle: Optional[asyncio.TimerHandle] = None
        self._deadline = 0.0
        self._fired = False

    @property
    def deadline(self) -> float:
        return self._deadline

    @property
    def active(self) -> bool:
        return not self._fired and not (
            self._handle is not None and self._handle.cancelled()
        )

    def cancel(self) -> None:
        if self._fired or self._handle is None:
            return
        self._handle.cancel()


class RealtimeScheduler(Scheduler):
    """Seconds-since-epoch clock plus asyncio-backed timers.

    ``epoch`` is a wall-clock (``time.time``) instant shared by every
    process in a live run, so ``now`` is directly comparable across
    replicas and the client — commit latency is ``commit_time`` on the
    leader minus ``mean_arrival`` stamped by the client. The millisecond
    skew this tolerates is far below the network delays being measured.

    Timers ride the asyncio loop, so callbacks run on the loop's thread
    exactly like simulator callbacks run on the event-loop "thread":
    protocol code needs no locks in either backend.
    """

    def __init__(
        self, loop: asyncio.AbstractEventLoop, epoch: Optional[float] = None
    ) -> None:
        self._loop = loop
        self.epoch = time.time() if epoch is None else epoch

    @property
    def now(self) -> float:
        return time.time() - self.epoch

    def schedule(self, delay: float, callback: Callable[[], None]) -> LiveTimer:
        """Run ``callback`` after ``delay`` seconds of wall-clock time.

        Unlike the simulator, a (small) negative delay is clamped to zero
        rather than rejected: with a real clock, "now" has already moved
        by the time the caller computed its delay.
        """
        timer = LiveTimer()
        timer._deadline = self.now + max(0.0, delay)

        def fire() -> None:
            timer._fired = True
            callback()

        timer._handle = self._loop.call_later(max(0.0, delay), fire)
        return timer

    def schedule_at(self, time_: float, callback: Callable[[], None]) -> LiveTimer:
        return self.schedule(time_ - self.now, callback)

    async def sleep_until(self, time_: float) -> None:
        """Async-sleep until protocol time ``time_`` (no-op if past).

        Shared by everything that waits on the epoch — replica start
        barriers, the client driver, the chaos injector's fault
        timeline — so "t seconds into the run" means the same wall
        instant in every process.
        """
        delay = time_ - self.now
        if delay > 0:
            await asyncio.sleep(delay)
