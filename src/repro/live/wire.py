"""Wire codecs for the live runtime.

Every message crossing a live TCP connection is one *frame*:

.. code-block:: text

    +----------------+----------------------------------------+
    | 4-byte big-    | frame body (codec-specific)            |
    | endian length  |                                        |
    +----------------+----------------------------------------+

Two frame-body formats exist, selected per connection by a 4-byte
preamble (``b"SMP"`` + version byte) each side writes immediately after
connecting:

* **v1 (json)** — a UTF-8 JSON document ``{"src", "kind", "ch", "p"}``
  whose payload is encoded *structurally*: plain scalars pass through,
  tuples and registered dataclasses become tagged objects
  (``{"__t__": <tag>, "v": ...}``) so that ``from_wire(to_wire(m)) == m``
  holds exactly — including tuple-ness, which the protocol relies on
  for hashable payload fields.
* **v2 (binary)** — a struct-packed header (``!iBB``: source node,
  message-kind id from :data:`MESSAGE_REGISTRY` order, channel) followed
  by a compact tag-byte payload encoding: one tag byte per value,
  zigzag varints for ints, raw IEEE doubles for floats, and — replacing
  v1's ``{"__t__": ...}`` name tagging — a fixed class-tag table over
  :data:`WIRE_TYPES` that writes dataclass fields positionally in
  declaration order, with no field names on the wire. Both the class-tag
  table and the kind-id table are append-only: reordering either is a
  wire-format break.

Both codecs double as the purity assertion demanded by the live
runtime: only scalars, lists/tuples/dicts, and the registered pure-data
classes below are encodable. A message smuggling a simulator handle,
timer, or any other live object raises :class:`WireError` at send time
instead of corrupting a peer.

Everything here is stdlib (``struct`` + ``json``): the environment
ships no third-party serializer, and the framing keeps the codecs
swappable — only this module knows the byte formats.
"""

from __future__ import annotations

import json
import struct
from dataclasses import fields, is_dataclass
from operator import attrgetter
from typing import Any, Iterator, Optional, Union

from repro.crypto.certificates import QuorumCert
from repro.crypto.proofs import AvailabilityProof
from repro.crypto.signatures import Signature
from repro.mempool.base import MessageKinds
from repro.sharding.certificate import ShardCertificate
from repro.sim.interfaces import Channel
from repro.types.batch import TxBatch
from repro.types.microblock import MicroBlock
from repro.types.proposal import Payload, PayloadEntry, Proposal

__all__ = [
    "WireError",
    "WIRE_TYPES",
    "MESSAGE_REGISTRY",
    "CLIENT_BATCH",
    "WIRE_MAGIC",
    "PREAMBLE_SIZE",
    "WireCodec",
    "CODECS",
    "get_codec",
    "to_wire",
    "from_wire",
    "encode_frame",
    "decode_frame",
    "encode_frame_binary",
    "decode_frame_binary",
    "FrameDecoder",
]


class WireError(ValueError):
    """Raised when an object cannot cross the wire (or a frame is bad)."""


#: Pure-data classes allowed on the wire, keyed by their tag. Everything
#: here must be a dataclass whose fields are themselves encodable —
#: that closure property is what the purity assertion enforces. The
#: *order* of this table is the binary codec's class-tag assignment:
#: append new classes at the end, never reorder.
WIRE_TYPES: dict[str, type] = {
    cls.__name__: cls
    for cls in (
        Signature,
        QuorumCert,
        AvailabilityProof,
        MicroBlock,
        TxBatch,
        PayloadEntry,
        Payload,
        Proposal,
        # Appended in PR 10 (sharded mempool); append-only table.
        ShardCertificate,
    )
}

#: Synthetic kind for client->replica workload submission; replicas
#: route it to ``Mempool.on_client_batch`` (it never exists in-sim,
#: where the workload generator calls the mempool directly).
CLIENT_BATCH = "client.batch"

#: Every message kind that crosses the live network, mapped to the
#: payload classes its top-level object may contain. Used by the
#: round-trip property tests to sweep the full vocabulary, and — in
#: declaration order — as the binary codec's kind-id table (append
#: only, never reorder). The JSON codec is structural and does not
#: consult this table.
MESSAGE_REGISTRY: dict[str, tuple[type, ...]] = {
    MessageKinds.MICROBLOCK: (MicroBlock,),
    MessageKinds.MICROBLOCK_GOSSIP: (MicroBlock,),
    MessageKinds.MICROBLOCK_FETCH: (MicroBlock,),
    MessageKinds.MICROBLOCK_FORWARD: (MicroBlock,),
    MessageKinds.ACK: (Signature,),
    MessageKinds.PROOF: (tuple,),          # (mb_id, AvailabilityProof)
    MessageKinds.FETCH_REQUEST: (int,),    # mb_id
    MessageKinds.RB_ECHO: (int,),          # mb_id
    MessageKinds.RB_READY: (int,),         # mb_id
    MessageKinds.LB_QUERY: (int,),         # query token
    MessageKinds.LB_INFO: (tuple,),        # (token, load)
    MessageKinds.PROPOSAL: (Proposal, tuple),  # PBFT wraps: (seq, Proposal)
    MessageKinds.VOTE: (tuple,),           # (block_id[, view], Signature)
    MessageKinds.NEW_VIEW: (tuple,),       # (view, QuorumCert)
    MessageKinds.SYNC_REQUEST: (int,),     # block_id
    MessageKinds.PBFT_PREPARE: (tuple,),   # (seq, node_id)
    MessageKinds.PBFT_COMMIT: (tuple,),    # (seq, node_id)
    CLIENT_BATCH: (TxBatch,),
    # Snapshot state transfer (appended in PR 8; append-only table).
    MessageKinds.STATE_SNAPSHOT_REQ: (int,),  # requester's applied height
    # (height, last_block_id, digest, tx_applied, blocks_applied, {k: v})
    MessageKinds.STATE_SNAPSHOT: (tuple,),
    # Sharded mempool (appended in PR 10; append-only table).
    MessageKinds.SHARD_MICROBLOCK: (MicroBlock,),
    MessageKinds.SHARD_ACK: (Signature,),
    MessageKinds.SHARD_CERT: (tuple,),     # (mb_id, ShardCertificate)
}


# -- structural payload codec (v1, JSON) -------------------------------------

def to_wire(obj: Any) -> Any:
    """Encode a payload object into JSON-able form.

    Raises :class:`WireError` for any object outside the pure-data
    vocabulary — this is the codec's purity assertion.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        # json.dumps(allow_nan=False) would catch these too, but failing
        # here names the offending value instead of the whole frame.
        if obj != obj or obj in (float("inf"), float("-inf")):
            raise WireError(f"non-finite float on the wire: {obj!r}")
        return obj
    if isinstance(obj, tuple):
        return {"__t__": "tuple", "v": [to_wire(item) for item in obj]}
    if isinstance(obj, list):
        return [to_wire(item) for item in obj]
    if isinstance(obj, dict):
        # Tagged pair list: JSON objects only take string keys, and
        # protocol dicts (if any appear) are keyed by ints.
        return {
            "__t__": "dict",
            "v": [[to_wire(k), to_wire(v)] for k, v in obj.items()],
        }
    cls = type(obj)
    tag = cls.__name__
    if WIRE_TYPES.get(tag) is cls and is_dataclass(obj):
        return {
            "__t__": tag,
            "v": {
                f.name: to_wire(getattr(obj, f.name)) for f in fields(obj)
            },
        }
    raise WireError(
        f"{cls.__module__}.{cls.__qualname__} is not a wire type; "
        "wire messages must be pure data (register the class in "
        "repro.live.wire.WIRE_TYPES if it is)"
    )


def from_wire(obj: Any) -> Any:
    """Decode the output of :func:`to_wire` back into payload objects."""
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, list):
        return [from_wire(item) for item in obj]
    if isinstance(obj, dict):
        tag = obj.get("__t__")
        value = obj.get("v")
        if tag == "tuple":
            return tuple(from_wire(item) for item in value)
        if tag == "dict":
            return {from_wire(k): from_wire(v) for k, v in value}
        cls = WIRE_TYPES.get(tag)
        if cls is None:
            raise WireError(f"unknown wire tag {tag!r}")
        return cls(**{name: from_wire(item) for name, item in value.items()})
    raise WireError(f"undecodable wire object: {obj!r}")


# -- framing -----------------------------------------------------------------

_LENGTH = struct.Struct(">I")

#: Upper bound on a single frame. Generously above any real message
#: (proposals reference microblocks rather than embedding bodies); its
#: job is to fail fast when a desynced stream yields a garbage length.
MAX_FRAME_BYTES = 32 * 1024 * 1024


def encode_frame(
    src: int, kind: str, channel: Channel, payload: Any
) -> bytes:
    """Serialize one message into a length-prefixed v1 (JSON) frame."""
    document = {
        "src": src,
        "kind": kind,
        "ch": channel.value,
        "p": to_wire(payload),
    }
    body = json.dumps(
        document, allow_nan=False, separators=(",", ":")
    ).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise WireError(f"frame too large: {len(body)} bytes")
    return _LENGTH.pack(len(body)) + body


def decode_frame(body: bytes) -> tuple[int, str, Channel, Any]:
    """Decode one v1 frame body (length prefix already stripped)."""
    try:
        document = json.loads(body.decode("utf-8"))
        return (
            document["src"],
            document["kind"],
            Channel(document["ch"]),
            from_wire(document["p"]),
        )
    except WireError:
        raise
    except (ValueError, KeyError, TypeError) as exc:
        raise WireError(f"malformed frame: {exc}") from exc


# -- binary payload codec (v2) -----------------------------------------------
#
# One tag byte per value. Ints are zigzag varints (arbitrary precision),
# floats raw IEEE doubles, strings/containers carry a varint count.
# Registered dataclasses get tags 0x20+index in WIRE_TYPES order and
# write their fields positionally — no names on the wire, which is the
# bulk of the size and CPU win over the v1 tagging.

_B_NONE = 0x00
_B_FALSE = 0x01
_B_TRUE = 0x02
_B_INT = 0x03
_B_FLOAT = 0x04
_B_STR = 0x05
_B_TUPLE = 0x06
_B_LIST = 0x07
_B_DICT = 0x08
_B_CLASS_BASE = 0x20

_FLOAT = struct.Struct("!d")


def _field_getter(names: tuple[str, ...]):
    """One C-level call extracting a class's fields as a tuple.

    ``attrgetter`` with several names returns the value tuple directly;
    the single-name form returns a bare value, so wrap it for shape.
    """
    if len(names) == 1:
        name = names[0]
        return lambda obj: (getattr(obj, name),)
    return attrgetter(*names)


#: class -> field names in declaration order (the positional wire order).
_BIN_FIELDS: dict[type, tuple[str, ...]] = {
    cls: tuple(f.name for f in fields(cls)) for cls in WIRE_TYPES.values()
}
#: class -> (tag byte, field-tuple getter)
_BIN_ENCODE: dict[type, tuple[int, Any]] = {
    cls: (_B_CLASS_BASE + index, _field_getter(_BIN_FIELDS[cls]))
    for index, cls in enumerate(WIRE_TYPES.values())
}
#: tag index -> (class, field names); constructors take the fields
#: positionally in the same order.
_BIN_DECODE: tuple = tuple(
    (cls, _BIN_FIELDS[cls]) for cls in WIRE_TYPES.values()
)

#: kind string <-> one-byte id, in MESSAGE_REGISTRY declaration order.
_KIND_TO_ID: dict[str, int] = {
    kind: index for index, kind in enumerate(MESSAGE_REGISTRY)
}
_ID_TO_KIND: tuple = tuple(MESSAGE_REGISTRY)

_HEADER2 = struct.Struct("!iBB")  # src (int32), kind id, channel

#: channel byte -> Channel member, skipping the enum-call machinery on
#: the per-frame decode path (KeyError folds into "malformed frame").
_CHANNEL_BY_VALUE: dict[int, Channel] = {
    member.value: member for member in Channel
}


def _encode_value(obj: Any, out: bytearray) -> None:
    kind = type(obj)
    if kind is int:
        out.append(_B_INT)
        # zigzag, then unsigned LEB128
        value = (obj << 1) if obj >= 0 else ((-obj << 1) - 1)
        while value > 0x7F:
            out.append((value & 0x7F) | 0x80)
            value >>= 7
        out.append(value)
    elif kind is str:
        raw = obj.encode("utf-8")
        out.append(_B_STR)
        value = len(raw)
        while value > 0x7F:
            out.append((value & 0x7F) | 0x80)
            value >>= 7
        out.append(value)
        out += raw
    elif kind is float:
        if obj != obj or obj in (float("inf"), float("-inf")):
            raise WireError(f"non-finite float on the wire: {obj!r}")
        out.append(_B_FLOAT)
        out += _FLOAT.pack(obj)
    elif kind is bool:
        out.append(_B_TRUE if obj else _B_FALSE)
    elif obj is None:
        out.append(_B_NONE)
    elif kind is tuple or kind is list:
        out.append(_B_TUPLE if kind is tuple else _B_LIST)
        value = len(obj)
        while value > 0x7F:
            out.append((value & 0x7F) | 0x80)
            value >>= 7
        out.append(value)
        for item in obj:
            _encode_value(item, out)
    elif kind is dict:
        out.append(_B_DICT)
        value = len(obj)
        while value > 0x7F:
            out.append((value & 0x7F) | 0x80)
            value >>= 7
        out.append(value)
        for key, item in obj.items():
            _encode_value(key, out)
            _encode_value(item, out)
    else:
        entry = _BIN_ENCODE.get(kind)
        if entry is None:
            raise WireError(
                f"{kind.__module__}.{kind.__qualname__} is not a wire type; "
                "wire messages must be pure data (register the class in "
                "repro.live.wire.WIRE_TYPES if it is)"
            )
        tag, getter = entry
        out.append(tag)
        for item in getter(obj):
            _encode_value(item, out)


def _read_uvarint(body: bytes, pos: int) -> tuple[int, int]:
    value = 0
    shift = 0
    while True:
        byte = body[pos]
        pos += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, pos
        shift += 7
        if shift > 896:
            # 128 continuation bytes — far beyond any real id or count;
            # only a garbage stream produces it. Bail before an
            # adversarial megabyte of 0x80s turns into a giant bigint.
            raise WireError("malformed varint (runaway continuation)")


def _decode_value(body: bytes, pos: int) -> tuple[Any, int]:
    # The single-byte varint fast paths (``byte < 0x80``) cover nearly
    # every int and count on a real wire — ids, views, field counts —
    # and skip a Python call per value in the hottest loop of the
    # receive path.
    tag = body[pos]
    pos += 1
    if tag == _B_INT:
        value = body[pos]
        if value < 0x80:
            pos += 1
        else:
            second = body[pos + 1]
            if second < 0x80:
                # Two-byte varint: ids, views, and counters live here
                # for most of a run; skip the generic loop for them.
                value = (value & 0x7F) | (second << 7)
                pos += 2
            else:
                value, pos = _read_uvarint(body, pos)
        return (value >> 1) if not value & 1 else -((value + 1) >> 1), pos
    if tag == _B_STR:
        count = body[pos]
        if count < 0x80:
            pos += 1
        else:
            count, pos = _read_uvarint(body, pos)
        end = pos + count
        if end > len(body):
            raise WireError("malformed frame: truncated string")
        return body[pos:end].decode("utf-8"), end
    if tag == _B_FLOAT:
        (value,) = _FLOAT.unpack_from(body, pos)
        return value, pos + _FLOAT.size
    if tag == _B_NONE:
        return None, pos
    if tag == _B_TRUE:
        return True, pos
    if tag == _B_FALSE:
        return False, pos
    if tag == _B_TUPLE or tag == _B_LIST:
        count = body[pos]
        if count < 0x80:
            pos += 1
        else:
            count, pos = _read_uvarint(body, pos)
        items = []
        append = items.append
        for _ in range(count):
            item, pos = _decode_value(body, pos)
            append(item)
        return (tuple(items) if tag == _B_TUPLE else items), pos
    if tag == _B_DICT:
        count = body[pos]
        if count < 0x80:
            pos += 1
        else:
            count, pos = _read_uvarint(body, pos)
        mapping = {}
        for _ in range(count):
            key, pos = _decode_value(body, pos)
            value, pos = _decode_value(body, pos)
            mapping[key] = value
        return mapping, pos
    index = tag - _B_CLASS_BASE
    if 0 <= index < len(_BIN_DECODE):
        cls, names = _BIN_DECODE[index]
        values = []
        append = values.append
        for _ in names:
            value, pos = _decode_value(body, pos)
            append(value)
        return cls(*values), pos
    raise WireError(f"unknown binary wire tag 0x{tag:02x}")


def encode_frame_binary(
    src: int, kind: str, channel: Channel, payload: Any
) -> bytes:
    """Serialize one message into a length-prefixed v2 (binary) frame."""
    kind_id = _KIND_TO_ID.get(kind)
    if kind_id is None:
        raise WireError(
            f"kind {kind!r} is not in MESSAGE_REGISTRY; the binary codec "
            "only ships registered kinds"
        )
    out = bytearray(_LENGTH.size + _HEADER2.size)
    _HEADER2.pack_into(out, _LENGTH.size, src, kind_id, channel.value)
    _encode_value(payload, out)
    length = len(out) - _LENGTH.size
    if length > MAX_FRAME_BYTES:
        raise WireError(f"frame too large: {length} bytes")
    _LENGTH.pack_into(out, 0, length)
    return bytes(out)


def decode_frame_binary(body: bytes) -> tuple[int, str, Channel, Any]:
    """Decode one v2 frame body (length prefix already stripped)."""
    try:
        src, kind_id, channel_value = _HEADER2.unpack_from(body)
        kind = _ID_TO_KIND[kind_id]
        payload, end = _decode_value(body, _HEADER2.size)
        if end != len(body):
            raise WireError(
                f"malformed frame: {len(body) - end} trailing bytes"
            )
        return src, kind, _CHANNEL_BY_VALUE[channel_value], payload
    except WireError:
        raise
    except (IndexError, ValueError, KeyError, TypeError,
            struct.error) as exc:
        raise WireError(f"malformed frame: {exc}") from exc


# -- codec selection + connection preamble -----------------------------------

#: Stream preamble: magic + one version byte, written once per TCP
#: connection before the first frame. The version byte names the frame
#: format for the rest of the stream.
WIRE_MAGIC = b"SMP"
PREAMBLE_SIZE = len(WIRE_MAGIC) + 1


class WireCodec:
    """One frame-body format: name, preamble version, encode/decode."""

    __slots__ = ("name", "version", "preamble", "encode", "decode")

    def __init__(self, name: str, version: int, encode, decode) -> None:
        self.name = name
        self.version = version
        self.preamble = WIRE_MAGIC + bytes([version])
        self.encode = encode
        self.decode = decode

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WireCodec({self.name!r}, v{self.version})"


CODECS: dict[str, WireCodec] = {
    "json": WireCodec("json", 1, encode_frame, decode_frame),
    "binary": WireCodec("binary", 2, encode_frame_binary,
                        decode_frame_binary),
}
_CODEC_BY_VERSION: dict[int, WireCodec] = {
    codec.version: codec for codec in CODECS.values()
}


def get_codec(codec: Union[str, WireCodec]) -> WireCodec:
    """Resolve a codec name (``json``/``binary``) to its :class:`WireCodec`."""
    if isinstance(codec, WireCodec):
        return codec
    try:
        return CODECS[codec]
    except KeyError:
        raise WireError(
            f"unknown wire codec {codec!r}; choose from {sorted(CODECS)}"
        ) from None


class FrameDecoder:
    """Incremental frame reassembly over an arbitrary byte stream.

    Feed whatever chunks the socket yields; iterate the completed
    messages. Partial frames are buffered across feeds. Reassembly is
    read-offset based: consumed bytes are reclaimed in one amortized
    compaction instead of a per-frame ``del buffer[:end]``, so a burst
    of thousands of coalesced frames in one read costs O(total), not
    O(total**2) memmove.

    With ``negotiate=True`` the stream must open with the 4-byte
    preamble; the decoder picks the frame format from the version byte.
    Passing ``codec`` alongside pins the expectation: a peer announcing
    any *other* codec is rejected with :class:`WireError` (the live
    network's mixed-codec guard). Without ``negotiate`` the decoder
    reads raw frames in the given codec (default v1 JSON), which is
    what the unit tests and any pre-preamble tooling use.
    """

    def __init__(
        self,
        codec: Union[str, WireCodec, None] = None,
        *,
        negotiate: bool = False,
    ) -> None:
        pinned = None if codec is None else get_codec(codec)
        self._codec = pinned if pinned is not None else CODECS["json"]
        self._expect = pinned
        self._negotiate = negotiate
        self._buffer = bytearray()
        self._offset = 0

    @property
    def codec(self) -> WireCodec:
        """The codec in effect (post-negotiation, when negotiating)."""
        return self._codec

    def feed(self, data: bytes) -> Iterator[tuple[int, str, Channel, Any]]:
        self._buffer.extend(data)
        if self._negotiate and not self._read_preamble():
            return
        decode = self._codec.decode
        while True:
            frame = self._next_frame()
            if frame is None:
                return
            yield decode(frame)

    def _read_preamble(self) -> bool:
        buffer = self._buffer
        if len(buffer) - self._offset < PREAMBLE_SIZE:
            return False
        start = self._offset
        raw = bytes(buffer[start:start + PREAMBLE_SIZE])
        if raw[:len(WIRE_MAGIC)] != WIRE_MAGIC:
            raise WireError(
                f"bad stream preamble {raw!r} (not a live wire stream?)"
            )
        codec = _CODEC_BY_VERSION.get(raw[-1])
        if codec is None:
            raise WireError(f"unsupported wire format version {raw[-1]}")
        if self._expect is not None and codec is not self._expect:
            raise WireError(
                f"peer speaks wire codec {codec.name!r} but this node is "
                f"configured for {self._expect.name!r}"
            )
        self._codec = codec
        self._offset = start + PREAMBLE_SIZE
        self._negotiate = False
        return True

    def _next_frame(self) -> Optional[bytes]:
        buffer = self._buffer
        offset = self._offset
        if len(buffer) - offset < _LENGTH.size:
            self._compact()
            return None
        (length,) = _LENGTH.unpack_from(buffer, offset)
        if length > MAX_FRAME_BYTES:
            raise WireError(f"frame length {length} exceeds limit (desync?)")
        end = offset + _LENGTH.size + length
        if len(buffer) < end:
            self._compact()
            return None
        frame = bytes(buffer[offset + _LENGTH.size:end])
        self._offset = end
        return frame

    def _compact(self) -> None:
        # Called only when the buffer holds at most one partial frame,
        # so the memmove is bounded by that frame's size — amortized
        # O(1) per byte fed regardless of how many frames one read
        # coalesced.
        if self._offset:
            del self._buffer[:self._offset]
            self._offset = 0
