"""Wire codec for the live runtime.

Every message crossing a live TCP connection is one *frame*:

.. code-block:: text

    +----------------+----------------------------------------+
    | 4-byte big-    | UTF-8 JSON document                    |
    | endian length  | {"src", "kind", "ch", "p"}             |
    +----------------+----------------------------------------+

``p`` is the protocol payload encoded *structurally*: plain scalars pass
through, tuples and registered dataclasses become tagged objects
(``{"__t__": <tag>, "v": ...}``) so that ``from_wire(to_wire(m)) == m``
holds exactly — including tuple-ness, which the protocol relies on for
hashable payload fields.

The codec doubles as the purity assertion demanded by the live runtime:
only scalars, lists/tuples/dicts, and the registered pure-data classes
below are encodable. A message smuggling a simulator handle, timer, or
any other live object raises :class:`WireError` at send time instead of
corrupting a peer.

JSON (stdlib) rather than msgpack: the environment ships no third-party
serializer, and the framing keeps the codec swappable — only this module
knows the byte format.
"""

from __future__ import annotations

import json
import struct
from dataclasses import fields, is_dataclass
from typing import Any, Iterator, Optional

from repro.crypto.certificates import QuorumCert
from repro.crypto.proofs import AvailabilityProof
from repro.crypto.signatures import Signature
from repro.mempool.base import MessageKinds
from repro.sim.interfaces import Channel
from repro.types.batch import TxBatch
from repro.types.microblock import MicroBlock
from repro.types.proposal import Payload, PayloadEntry, Proposal

__all__ = [
    "WireError",
    "WIRE_TYPES",
    "MESSAGE_REGISTRY",
    "CLIENT_BATCH",
    "to_wire",
    "from_wire",
    "encode_frame",
    "decode_frame",
    "FrameDecoder",
]


class WireError(ValueError):
    """Raised when an object cannot cross the wire (or a frame is bad)."""


#: Pure-data classes allowed on the wire, keyed by their tag. Everything
#: here must be a dataclass whose fields are themselves encodable —
#: that closure property is what the purity assertion enforces.
WIRE_TYPES: dict[str, type] = {
    cls.__name__: cls
    for cls in (
        Signature,
        QuorumCert,
        AvailabilityProof,
        MicroBlock,
        TxBatch,
        PayloadEntry,
        Payload,
        Proposal,
    )
}

#: Synthetic kind for client->replica workload submission; replicas
#: route it to ``Mempool.on_client_batch`` (it never exists in-sim,
#: where the workload generator calls the mempool directly).
CLIENT_BATCH = "client.batch"

#: Every message kind that crosses the live network, mapped to the
#: payload classes its top-level object may contain. Used by the
#: round-trip property tests to sweep the full vocabulary; the codec
#: itself is structural and does not consult this table.
MESSAGE_REGISTRY: dict[str, tuple[type, ...]] = {
    MessageKinds.MICROBLOCK: (MicroBlock,),
    MessageKinds.MICROBLOCK_GOSSIP: (MicroBlock,),
    MessageKinds.MICROBLOCK_FETCH: (MicroBlock,),
    MessageKinds.MICROBLOCK_FORWARD: (MicroBlock,),
    MessageKinds.ACK: (Signature,),
    MessageKinds.PROOF: (tuple,),          # (mb_id, AvailabilityProof)
    MessageKinds.FETCH_REQUEST: (int,),    # mb_id
    MessageKinds.RB_ECHO: (int,),          # mb_id
    MessageKinds.RB_READY: (int,),         # mb_id
    MessageKinds.LB_QUERY: (int,),         # query token
    MessageKinds.LB_INFO: (tuple,),        # (token, load)
    MessageKinds.PROPOSAL: (Proposal, tuple),  # PBFT wraps: (seq, Proposal)
    MessageKinds.VOTE: (tuple,),           # (block_id[, view], Signature)
    MessageKinds.NEW_VIEW: (tuple,),       # (view, QuorumCert)
    MessageKinds.SYNC_REQUEST: (int,),     # block_id
    MessageKinds.PBFT_PREPARE: (tuple,),   # (seq, node_id)
    MessageKinds.PBFT_COMMIT: (tuple,),    # (seq, node_id)
    CLIENT_BATCH: (TxBatch,),
}


# -- structural payload codec ------------------------------------------------

def to_wire(obj: Any) -> Any:
    """Encode a payload object into JSON-able form.

    Raises :class:`WireError` for any object outside the pure-data
    vocabulary — this is the codec's purity assertion.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        # json.dumps(allow_nan=False) would catch these too, but failing
        # here names the offending value instead of the whole frame.
        if obj != obj or obj in (float("inf"), float("-inf")):
            raise WireError(f"non-finite float on the wire: {obj!r}")
        return obj
    if isinstance(obj, tuple):
        return {"__t__": "tuple", "v": [to_wire(item) for item in obj]}
    if isinstance(obj, list):
        return [to_wire(item) for item in obj]
    if isinstance(obj, dict):
        # Tagged pair list: JSON objects only take string keys, and
        # protocol dicts (if any appear) are keyed by ints.
        return {
            "__t__": "dict",
            "v": [[to_wire(k), to_wire(v)] for k, v in obj.items()],
        }
    cls = type(obj)
    tag = cls.__name__
    if WIRE_TYPES.get(tag) is cls and is_dataclass(obj):
        return {
            "__t__": tag,
            "v": {
                f.name: to_wire(getattr(obj, f.name)) for f in fields(obj)
            },
        }
    raise WireError(
        f"{cls.__module__}.{cls.__qualname__} is not a wire type; "
        "wire messages must be pure data (register the class in "
        "repro.live.wire.WIRE_TYPES if it is)"
    )


def from_wire(obj: Any) -> Any:
    """Decode the output of :func:`to_wire` back into payload objects."""
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, list):
        return [from_wire(item) for item in obj]
    if isinstance(obj, dict):
        tag = obj.get("__t__")
        value = obj.get("v")
        if tag == "tuple":
            return tuple(from_wire(item) for item in value)
        if tag == "dict":
            return {from_wire(k): from_wire(v) for k, v in value}
        cls = WIRE_TYPES.get(tag)
        if cls is None:
            raise WireError(f"unknown wire tag {tag!r}")
        return cls(**{name: from_wire(item) for name, item in value.items()})
    raise WireError(f"undecodable wire object: {obj!r}")


# -- framing -----------------------------------------------------------------

_LENGTH = struct.Struct(">I")

#: Upper bound on a single frame. Generously above any real message
#: (proposals reference microblocks rather than embedding bodies); its
#: job is to fail fast when a desynced stream yields a garbage length.
MAX_FRAME_BYTES = 32 * 1024 * 1024


def encode_frame(
    src: int, kind: str, channel: Channel, payload: Any
) -> bytes:
    """Serialize one message into a length-prefixed frame."""
    document = {
        "src": src,
        "kind": kind,
        "ch": channel.value,
        "p": to_wire(payload),
    }
    body = json.dumps(
        document, allow_nan=False, separators=(",", ":")
    ).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise WireError(f"frame too large: {len(body)} bytes")
    return _LENGTH.pack(len(body)) + body


def decode_frame(body: bytes) -> tuple[int, str, Channel, Any]:
    """Decode one frame body (length prefix already stripped)."""
    try:
        document = json.loads(body.decode("utf-8"))
        return (
            document["src"],
            document["kind"],
            Channel(document["ch"]),
            from_wire(document["p"]),
        )
    except WireError:
        raise
    except (ValueError, KeyError, TypeError) as exc:
        raise WireError(f"malformed frame: {exc}") from exc


class FrameDecoder:
    """Incremental frame reassembly over an arbitrary byte stream.

    Feed whatever chunks the socket yields; iterate the completed
    messages. Partial frames are buffered across feeds.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> Iterator[tuple[int, str, Channel, Any]]:
        self._buffer.extend(data)
        while True:
            frame = self._next_frame()
            if frame is None:
                return
            yield decode_frame(frame)

    def _next_frame(self) -> Optional[bytes]:
        buffer = self._buffer
        if len(buffer) < _LENGTH.size:
            return None
        (length,) = _LENGTH.unpack_from(buffer)
        if length > MAX_FRAME_BYTES:
            raise WireError(f"frame length {length} exceeds limit (desync?)")
        end = _LENGTH.size + length
        if len(buffer) < end:
            return None
        frame = bytes(buffer[_LENGTH.size:end])
        del buffer[:end]
        return frame
