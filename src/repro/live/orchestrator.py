"""Live run orchestrator: n replica processes + 1 in-process client.

``run_live`` takes the same :class:`ExperimentConfig` the simulator
takes (topology/fault fields are ignored — the localhost kernel path
*is* the network), spawns one OS process per replica, drives the
workload from the parent, and merges the per-replica results back into
the :class:`MetricsHub` report format so live and simulated numbers are
directly comparable.

Merging recovers the sim's measurement semantics: every replica records
every block it commits locally, and the parent deduplicates by block id
keeping the *earliest* wall-clock commit — the live equivalent of "the
first correct replica to commit reports it".
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
import socket
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from repro.harness.config import ExperimentConfig
from repro.live.client import run_client
from repro.live.replica_proc import replica_main
from repro.live.verify import verify_events
from repro.metrics import MetricsHub, WeightedDigest
from repro.verification.oracles import Violation

#: Wall-clock seconds between process spawn and protocol t=0. Must cover
#: n interpreter starts + module imports so every replica is listening
#: before consensus begins.
DEFAULT_STARTUP_GRACE = 3.0

#: Seconds past the replica's own shutdown grace before the parent
#: escalates to terminate/kill.
JOIN_SLACK = 10.0


@dataclass
class LiveConfig:
    """Live-specific knobs layered over an :class:`ExperimentConfig`."""

    experiment: ExperimentConfig
    host: str = "127.0.0.1"
    startup_grace: float = DEFAULT_STARTUP_GRACE
    #: Directory for per-replica result JSON files (a temp dir when None).
    scratch_dir: Optional[str] = None


class _FixedClock:
    """Minimal ``now`` holder for the merged (post-run) MetricsHub."""

    def __init__(self, now: float) -> None:
        self.now = now


@dataclass
class LiveRunResult:
    """Merged outcome of one live run (mirrors ``ExperimentResult``)."""

    label: str
    throughput_tps: float
    latency: WeightedDigest
    committed_blocks: int
    committed_tx: int
    emitted_tx: int
    view_changes: int
    metrics: MetricsHub
    config: ExperimentConfig
    per_replica: list[dict]
    violations: list[Violation]
    wall_clock_s: float

    @property
    def ok(self) -> bool:
        return not self.violations and self.committed_blocks > 0

    def to_dict(self) -> dict:
        return {
            "mode": "live",
            "label": self.label,
            "throughput_tps": self.throughput_tps,
            "latency_mean_ms": self.latency.mean * 1000,
            "latency_p50_ms": self.latency.percentile(50) * 1000,
            "latency_p99_ms": self.latency.percentile(99) * 1000,
            "committed_blocks": self.committed_blocks,
            "committed_tx": self.committed_tx,
            "emitted_tx": self.emitted_tx,
            "view_changes": self.view_changes,
            "wall_clock_s": self.wall_clock_s,
            "per_replica": self.per_replica,
            "violations": [v.to_dict() for v in self.violations],
            "config": self.config.to_dict(),
        }


def allocate_ports(n: int, host: str = "127.0.0.1") -> dict[int, int]:
    """Reserve ``n`` free localhost ports via ephemeral bind.

    The sockets are closed before the replicas re-bind; on localhost the
    window for another process to steal one is negligible, and a stolen
    port fails loudly at replica startup.
    """
    sockets = []
    ports: dict[int, int] = {}
    try:
        for node in range(n):
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.bind((host, 0))
            sockets.append(sock)
            ports[node] = sock.getsockname()[1]
    finally:
        for sock in sockets:
            sock.close()
    return ports


def _merge(
    config: ExperimentConfig,
    replica_results: list[dict],
    emitted_tx: int,
    wall_clock_s: float,
) -> LiveRunResult:
    hub = MetricsHub(_FixedClock(config.end_time))
    commits = sorted(
        (
            commit
            for result in replica_results
            for commit in result["commits"]
        ),
        key=lambda c: (c["commit_time"], c["block_id"]),
    )
    for commit in commits:
        hub.record_commit(
            block_id=commit["block_id"],
            tx_count=commit["tx_count"],
            microblock_count=commit["microblock_count"],
            latencies=[tuple(pair) for pair in commit["latencies"]],
            commit_time=commit["commit_time"],
        )

    events = [
        event for result in replica_results for event in result["events"]
    ]
    violations = verify_events(events, emitted_tx)

    start, end = config.warmup, config.end_time
    return LiveRunResult(
        label=(config.label or (
            f"live-{config.protocol.mempool}/{config.protocol.consensus}"
            f"-n{config.protocol.n}"
        )),
        throughput_tps=hub.throughput_tps(start, end),
        latency=hub.latency_stats(start, end),
        committed_blocks=len(hub.commits),
        committed_tx=hub.committed_tx_total,
        emitted_tx=emitted_tx,
        view_changes=sum(r["view_changes"] for r in replica_results),
        metrics=hub,
        config=config,
        per_replica=[
            {
                "node_id": result["node_id"],
                "commits": len(result["commits"]),
                "bytes_in": result["bytes_in"],
                "bytes_out": result["bytes_out"],
                "messages_delivered": result["messages_delivered"],
            }
            for result in sorted(replica_results, key=lambda r: r["node_id"])
        ],
        violations=violations,
        wall_clock_s=wall_clock_s,
    )


def run_live(live: LiveConfig) -> LiveRunResult:
    """Execute one live run end to end; blocks until all processes exit."""
    config = live.experiment
    n = config.protocol.n
    started = time.perf_counter()
    ports = allocate_ports(n, live.host)
    epoch = time.time() + live.startup_grace

    context = multiprocessing.get_context("spawn")
    with tempfile.TemporaryDirectory(dir=live.scratch_dir) as scratch:
        processes = []
        result_paths = []
        for node_id in range(n):
            result_path = str(Path(scratch) / f"replica-{node_id}.json")
            result_paths.append(result_path)
            spec = {
                "node_id": node_id,
                "ports": {str(node): port for node, port in ports.items()},
                "epoch": epoch,
                "end_time": config.end_time,
                "seed": config.seed,
                "protocol": config.protocol.to_dict(),
                "result_path": result_path,
            }
            process = context.Process(
                target=replica_main, args=(spec,), daemon=True
            )
            process.start()
            processes.append(process)

        emitted_tx = asyncio.run(run_client(config, ports, epoch))

        deadline = epoch + config.end_time + JOIN_SLACK
        failures = []
        for process in processes:
            process.join(timeout=max(0.5, deadline - time.time()))
            if process.is_alive():
                process.terminate()
                process.join(timeout=2.0)
                if process.is_alive():  # pragma: no cover - last resort
                    process.kill()
                    process.join()
                failures.append(f"replica pid {process.pid} hung; killed")
            elif process.exitcode not in (0, -15):
                failures.append(
                    f"replica pid {process.pid} exited {process.exitcode}"
                )

        replica_results = []
        for node_id, result_path in enumerate(result_paths):
            try:
                with open(result_path, encoding="utf-8") as handle:
                    replica_results.append(json.load(handle))
            except (OSError, ValueError):
                failures.append(f"replica {node_id} produced no result file")

    if not replica_results:
        raise RuntimeError(
            "live run produced no replica results: " + "; ".join(failures)
        )

    result = _merge(
        config, replica_results, emitted_tx,
        wall_clock_s=time.perf_counter() - started,
    )
    for failure in failures:
        result.violations.append(Violation(
            oracle="live-runtime", kind="process", time=config.end_time,
            message=failure,
        ))
    return result
