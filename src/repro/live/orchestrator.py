"""Live run orchestrator: n replica processes + 1 in-process client.

``run_live`` takes the same :class:`ExperimentConfig` the simulator
takes (topology fields are ignored — the localhost kernel path *is* the
network), spawns one OS process per replica, drives the workload from
the parent, and merges the per-replica results back into the
:class:`MetricsHub` report format so live and simulated numbers are
directly comparable.

Merging recovers the sim's measurement semantics: every replica records
every block it commits locally, and the parent deduplicates by block id
keeping the *earliest* wall-clock commit — the live equivalent of "the
first correct replica to commit reports it".

Chaos runs (``LiveConfig.faults``) execute the schedule's crash/restart
timeline via :class:`~repro.live.chaos.LiveFaultInjector` — SIGKILL and
fresh-interpreter respawn against the same port map — while its link
faults ship to every replica as shaping windows. The merged report then
carries the same per-fault-window recovery metrics
(:meth:`MetricsHub.fault_report`) the simulator produces, and the oracle
replay runs over event logs streamed to disk, so even a SIGKILLed
incarnation's record survives into the safety check.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
import socket
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from repro.durability import DurabilityConfig
from repro.faults import FaultSchedule
from repro.harness.config import ExperimentConfig
from repro.live.chaos import LiveFaultInjector
from repro.live.client import run_client
from repro.live.replica_proc import replica_main
from repro.live.verify import verify_events
from repro.live.wire import get_codec
from repro.metrics import MetricsHub, WeightedDigest
from repro.verification.oracles import Violation

#: Wall-clock seconds between process spawn and protocol t=0. Must cover
#: n interpreter starts + module imports so every replica is listening
#: before consensus begins.
DEFAULT_STARTUP_GRACE = 3.0

#: Seconds past the replica's own shutdown grace before the parent
#: escalates to terminate/kill.
JOIN_SLACK = 10.0


@dataclass
class LiveConfig:
    """Live-specific knobs layered over an :class:`ExperimentConfig`."""

    experiment: ExperimentConfig
    host: str = "127.0.0.1"
    startup_grace: float = DEFAULT_STARTUP_GRACE
    #: Directory for per-replica result JSON files (a temp dir when None).
    scratch_dir: Optional[str] = None
    #: Scripted fault schedule executed against the live cluster
    #: (crash/restart as SIGKILL/respawn, link faults as frame shaping).
    #: Falls back to ``experiment.faults`` so a config written for the
    #: simulator runs unchanged.
    faults: Optional[FaultSchedule] = None
    #: Frame format on the wire: ``binary`` (struct-packed v2, the
    #: default hot path) or ``json`` (v1, kept for comparison and
    #: debugging). Every process in the run uses the same codec; the
    #: per-connection preamble rejects a mismatched peer.
    wire_codec: str = "binary"
    #: Durable state machine under every replica (WAL + checkpoints).
    #: Falls back to ``experiment.durability`` like ``faults`` does.
    durability: Optional[DurabilityConfig] = None
    #: Root for the per-replica data dirs; inside the run's scratch dir
    #: (deleted with it) when None.
    data_dir: Optional[str] = None

    def __post_init__(self) -> None:
        if self.faults is None:
            self.faults = self.experiment.faults
        if self.faults is not None:
            self.faults.validate_live(self.experiment.protocol.n)
        if self.durability is None:
            self.durability = self.experiment.durability
        if self.data_dir is None:
            self.data_dir = self.experiment.data_dir
        get_codec(self.wire_codec)  # fail fast on unknown codec names


class _FixedClock:
    """Minimal ``now`` holder for the merged (post-run) MetricsHub."""

    def __init__(self, now: float) -> None:
        self.now = now


@dataclass
class LiveRunResult:
    """Merged outcome of one live run (mirrors ``ExperimentResult``)."""

    label: str
    throughput_tps: float
    latency: WeightedDigest
    committed_blocks: int
    committed_tx: int
    emitted_tx: int
    view_changes: int
    metrics: MetricsHub
    config: ExperimentConfig
    per_replica: list[dict]
    violations: list[Violation]
    wall_clock_s: float
    #: Per-fault-window recovery metrics (same shape as the sim's
    #: ``MetricsHub.fault_report``); empty for fault-free runs.
    fault_report: list[dict] = field(default_factory=list)
    #: Process faults as applied: scheduled vs actual wall time.
    fault_timeline: list[dict] = field(default_factory=list)
    #: Frame format the run used on the wire.
    wire_codec: str = "binary"
    #: Per-incarnation durable-recovery rows (source, recovery_time,
    #: WAL replay throughput, checkpoint bytes); empty when the run had
    #: no durability layer.
    recovery_report: list[dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations and self.committed_blocks > 0

    def to_dict(self) -> dict:
        return {
            "mode": "live",
            "label": self.label,
            "wire_codec": self.wire_codec,
            "throughput_tps": self.throughput_tps,
            "latency_mean_ms": self.latency.mean * 1000,
            "latency_p50_ms": self.latency.percentile(50) * 1000,
            "latency_p99_ms": self.latency.percentile(99) * 1000,
            "committed_blocks": self.committed_blocks,
            "committed_tx": self.committed_tx,
            "emitted_tx": self.emitted_tx,
            "view_changes": self.view_changes,
            "wall_clock_s": self.wall_clock_s,
            "per_replica": self.per_replica,
            "violations": [v.to_dict() for v in self.violations],
            "fault_report": [
                {
                    key: (None if isinstance(value, float)
                          and value == float("inf") else value)
                    for key, value in entry.items()
                }
                for entry in self.fault_report
            ],
            "fault_timeline": self.fault_timeline,
            "recovery_report": self.recovery_report,
            "config": self.config.to_dict(),
        }


def allocate_ports(n: int, host: str = "127.0.0.1") -> dict[int, int]:
    """Reserve ``n`` free localhost ports via ephemeral bind.

    The sockets are closed before the replicas re-bind; on localhost the
    window for another process to steal one is negligible, and a stolen
    port fails loudly at replica startup.
    """
    sockets = []
    ports: dict[int, int] = {}
    try:
        for node in range(n):
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.bind((host, 0))
            sockets.append(sock)
            ports[node] = sock.getsockname()[1]
    finally:
        for sock in sockets:
            sock.close()
    return ports


@dataclass
class _Incarnation:
    """One OS process serving one replica id for part (or all) of a run."""

    node_id: int
    generation: int
    process: multiprocessing.Process
    result_path: str
    events_path: str
    #: True when the chaos injector SIGKILLed it: its nonzero exit and
    #: missing result file are the *point*, not failures.
    killed: bool = False


class _ProcessTable:
    """Spawn/kill bookkeeping shared by ``run_live`` and the injector."""

    def __init__(self, context, base_spec: dict, scratch: str) -> None:
        self._context = context
        self._base_spec = base_spec
        self._scratch = scratch
        self.all: list[_Incarnation] = []
        self.current: dict[int, _Incarnation] = {}

    def spawn(self, node_id: int) -> _Incarnation:
        generation = (
            self.current[node_id].generation + 1
            if node_id in self.current else 0
        )
        stem = f"replica-{node_id}-g{generation}"
        spec = dict(self._base_spec)
        spec["node_id"] = node_id
        spec["generation"] = generation
        spec["result_path"] = str(Path(self._scratch) / f"{stem}.json")
        spec["events_path"] = str(Path(self._scratch) / f"{stem}.events.jsonl")
        process = self._context.Process(
            target=replica_main, args=(spec,), daemon=True
        )
        process.start()
        incarnation = _Incarnation(
            node_id=node_id,
            generation=generation,
            process=process,
            result_path=spec["result_path"],
            events_path=spec["events_path"],
        )
        self.all.append(incarnation)
        self.current[node_id] = incarnation
        return incarnation

    def kill(self, node_id: int) -> None:
        incarnation = self.current[node_id]
        incarnation.killed = True
        if incarnation.process.is_alive():
            incarnation.process.kill()


def _read_events(table: _ProcessTable, failures: list[str]) -> list[dict]:
    """Merge every incarnation's streamed event log.

    Tolerates a truncated final line on killed incarnations (SIGKILL
    can land mid-write); any other unreadable line is a real failure.
    """
    events: list[dict] = []
    for incarnation in table.all:
        try:
            with open(incarnation.events_path, encoding="utf-8") as handle:
                lines = handle.read().splitlines()
        except OSError:
            if not incarnation.killed:
                failures.append(
                    f"replica {incarnation.node_id} "
                    f"(gen {incarnation.generation}) produced no event log"
                )
            continue
        for index, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                events.append(json.loads(line))
            except ValueError:
                if incarnation.killed and index == len(lines) - 1:
                    continue  # torn final write under SIGKILL
                failures.append(
                    f"replica {incarnation.node_id} event log line "
                    f"{index + 1} unreadable"
                )
    return events


def _merge(
    config: ExperimentConfig,
    replica_results: list[dict],
    events: list[dict],
    emitted_tx: int,
    wall_clock_s: float,
    schedule: Optional[FaultSchedule] = None,
    fault_timeline: Optional[list[dict]] = None,
    wire_codec: str = "binary",
) -> LiveRunResult:
    hub = MetricsHub(_FixedClock(config.end_time))
    commits = sorted(
        (
            commit
            for result in replica_results
            for commit in result["commits"]
        ),
        key=lambda c: (c["commit_time"], c["block_id"]),
    )
    for commit in commits:
        hub.record_commit(
            block_id=commit["block_id"],
            tx_count=commit["tx_count"],
            microblock_count=commit["microblock_count"],
            latencies=[tuple(pair) for pair in commit["latencies"]],
            commit_time=commit["commit_time"],
        )

    violations = verify_events(events, emitted_tx, config.protocol)

    fault_report: list[dict] = []
    if schedule is not None:
        for window in schedule.windows():
            hub.record_fault_window(window)
        fault_report = hub.fault_report()

    recovery_report = [
        {
            "node": result["node_id"],
            "generation": result.get("generation", 0),
            **result["recovery"],
        }
        for result in sorted(
            replica_results,
            key=lambda r: (r["node_id"], r.get("generation", 0)),
        )
        if result.get("recovery") is not None
    ]

    start, end = config.warmup, config.end_time
    return LiveRunResult(
        label=(config.label or (
            f"live-{config.protocol.mempool}/{config.protocol.consensus}"
            f"-n{config.protocol.n}"
        )),
        throughput_tps=hub.throughput_tps(start, end),
        latency=hub.latency_stats(start, end),
        committed_blocks=len(hub.commits),
        committed_tx=hub.committed_tx_total,
        emitted_tx=emitted_tx,
        view_changes=sum(r["view_changes"] for r in replica_results),
        metrics=hub,
        config=config,
        per_replica=[
            {
                "node_id": result["node_id"],
                "generation": result.get("generation", 0),
                "commits": len(result["commits"]),
                "bytes_in": result["bytes_in"],
                "bytes_out": result["bytes_out"],
                "messages_delivered": result["messages_delivered"],
                "frames_dropped": result.get("frames_dropped", 0),
                "queue_high_watermark": result.get("queue_high_watermark", 0),
                "reconnects": result.get("reconnects", 0),
                "frames_shed": result.get("frames_shed", 0),
                "recovery_source": (
                    result["recovery"]["source"]
                    if result.get("recovery") is not None else None
                ),
                "executed_height": result.get("executed_height"),
                "state_digest": result.get("state_digest"),
                "snapshot_installs": result.get("snapshot_installs"),
                "snapshots_served": result.get("snapshots_served"),
            }
            for result in sorted(
                replica_results,
                key=lambda r: (r["node_id"], r.get("generation", 0)),
            )
        ],
        violations=violations,
        wall_clock_s=wall_clock_s,
        fault_report=fault_report,
        fault_timeline=list(fault_timeline or []),
        wire_codec=wire_codec,
        recovery_report=recovery_report,
    )


async def _drive(
    config: ExperimentConfig,
    ports: dict[int, int],
    epoch: float,
    injector: Optional[LiveFaultInjector],
    wire_codec: str = "binary",
) -> int:
    """Run the client driver and the fault timeline concurrently."""
    client = asyncio.ensure_future(
        run_client(config, ports, epoch, wire_codec=wire_codec)
    )
    if injector is None:
        return await client
    chaos = asyncio.ensure_future(injector.run())
    try:
        emitted = await client
    finally:
        # The timeline normally ends before the workload; if the client
        # died early, don't leave kills/respawns firing unsupervised.
        if not chaos.done():
            chaos.cancel()
        await asyncio.gather(chaos, return_exceptions=True)
    return emitted


def run_live(live: LiveConfig) -> LiveRunResult:
    """Execute one live run end to end; blocks until all processes exit."""
    config = live.experiment
    n = config.protocol.n
    started = time.perf_counter()
    ports = allocate_ports(n, live.host)
    epoch = time.time() + live.startup_grace
    schedule = live.faults

    context = multiprocessing.get_context("spawn")
    with tempfile.TemporaryDirectory(dir=live.scratch_dir) as scratch:
        base_spec = {
            "ports": {str(node): port for node, port in ports.items()},
            "epoch": epoch,
            "end_time": config.end_time,
            "seed": config.seed,
            "protocol": config.protocol.to_dict(),
            "wire_codec": live.wire_codec,
        }
        if schedule is not None:
            shaping = schedule.shaping_spec()
            if shaping:
                base_spec["shaping"] = shaping
        if live.durability is not None:
            data_root = Path(live.data_dir or Path(scratch) / "data")
            data_root.mkdir(parents=True, exist_ok=True)
            base_spec["durability"] = live.durability.to_spec()
            base_spec["data_root"] = str(data_root)
        table = _ProcessTable(context, base_spec, scratch)
        for node_id in range(n):
            table.spawn(node_id)

        injector = None
        if schedule is not None and schedule.process_events():
            injector = LiveFaultInjector(
                schedule, epoch, kill=table.kill, respawn=table.spawn
            )
        emitted_tx = asyncio.run(
            _drive(config, ports, epoch, injector,
                   wire_codec=live.wire_codec)
        )

        deadline = epoch + config.end_time + JOIN_SLACK
        failures = []
        for incarnation in table.all:
            process = incarnation.process
            process.join(timeout=max(0.5, deadline - time.time()))
            if process.is_alive():
                process.terminate()
                process.join(timeout=2.0)
                if process.is_alive():  # pragma: no cover - last resort
                    process.kill()
                    process.join()
                failures.append(f"replica pid {process.pid} hung; killed")
            elif incarnation.killed:
                # SIGKILL by the chaos injector: -9 is the expected exit.
                pass
            elif process.exitcode not in (0, -15):
                failures.append(
                    f"replica pid {process.pid} exited {process.exitcode}"
                )

        replica_results = []
        for incarnation in table.all:
            try:
                with open(incarnation.result_path, encoding="utf-8") as handle:
                    replica_results.append(json.load(handle))
            except (OSError, ValueError):
                if not incarnation.killed:
                    failures.append(
                        f"replica {incarnation.node_id} "
                        f"(gen {incarnation.generation}) "
                        "produced no result file"
                    )
        events = _read_events(table, failures)

    if not replica_results:
        raise RuntimeError(
            "live run produced no replica results: " + "; ".join(failures)
        )

    result = _merge(
        config, replica_results, events, emitted_tx,
        wall_clock_s=time.perf_counter() - started,
        schedule=schedule,
        fault_timeline=injector.timeline if injector is not None else None,
        wire_codec=live.wire_codec,
    )
    for failure in failures:
        result.violations.append(Violation(
            oracle="live-runtime", kind="process", time=config.end_time,
            message=failure,
        ))
    return result
