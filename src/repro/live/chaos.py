"""Live chaos: the fault-injection layer on real processes and sockets.

The same declarative :class:`~repro.faults.FaultSchedule` that drives
the simulator's :class:`~repro.faults.FaultInjector` runs here against
OS-level reality, split along the seam
:meth:`~repro.faults.FaultSchedule.process_events` /
:meth:`~repro.faults.FaultSchedule.shaping_spec` draws:

* **Process faults** (crash/restart) are executed by
  :class:`LiveFaultInjector` inside the orchestrator: a crash is
  ``SIGKILL`` — no shutdown grace, no result flush, exactly what a
  power-cut gives you — and a restart respawns a *fresh* interpreter
  that rebinds the same port and resyncs through the ordinary
  chain-sync / PAB-fetch paths over re-established TCP connections.
* **Link faults** (partition/heal, loss, delay+jitter, bandwidth
  squeeze) are evaluated per frame by :class:`LinkShaper` inside each
  replica's :class:`~repro.live.network.LiveNetwork`. Every process
  receives the same window list in its spawn spec and evaluates it
  against the shared wall-clock epoch, so windows open and close in
  lockstep (within clock skew) without any runtime control channel —
  the EINES/netem approach, realized in the writer path instead of tc.

Drops happen at *send* time (a partitioned frame never occupies queue
space); delays and throttling happen at *write* time in the link's
writer task, where holding a frame back serializes the link exactly
like a shaped interface would.
"""

from __future__ import annotations

import time
from typing import Callable, Optional, Sequence

from repro.faults.schedule import (
    CrashReplica,
    FaultEvent,
    FaultSchedule,
    channel_for,
)
from repro.sim.interfaces import Channel

__all__ = ["LinkShaper", "LiveFaultInjector", "LIVE_LINK_BANDWIDTH_BPS"]

#: Nominal unshaped egress bandwidth of a live replica. Localhost TCP is
#: effectively unthrottled, so squeezes need a baseline to scale: a
#: ``factor=0.1`` squeeze shapes egress to 10% of this. Matches the
#: simulator's LAN default (1 Gbps).
LIVE_LINK_BANDWIDTH_BPS = 1e9

#: Token-bucket burst while throttled: one jumbo frame's worth, so
#: throttling bites quickly without serializing tiny control messages
#: one token at a time.
_BURST_BYTES = 256 * 1024


class _EgressBucket:
    """Continuous-time token bucket metering shaped egress bytes."""

    def __init__(self, burst_bytes: float = _BURST_BYTES) -> None:
        self._burst = burst_bytes
        self._tokens = burst_bytes
        self._last: Optional[float] = None

    def delay(self, now: float, rate_bytes_s: float, size: int) -> float:
        """Seconds to hold a ``size``-byte frame to respect the rate."""
        if self._last is None:
            self._last = now
        self._tokens = min(
            self._burst, self._tokens + (now - self._last) * rate_bytes_s
        )
        self._last = now
        self._tokens -= size
        if self._tokens >= 0:
            return 0.0
        return -self._tokens / rate_bytes_s


class LinkShaper:
    """Per-frame realization of a schedule's link-shaping windows.

    One shaper serves one process's egress. All randomness (loss coin
    flips, delay jitter) draws from the injected ``rng``, so a seeded
    shaper is deterministic given the same frame sequence and clock —
    which is what the unit tests pin down. Wall-clock window activation
    is inherently racy at the edges across processes; that imprecision
    is the live backend's analogue of the simulator's zero-width event
    boundaries and stays well below the window durations being modeled.

    ``windows`` is the plain-dict list from
    :meth:`repro.faults.FaultSchedule.shaping_spec`; ``clock`` is any
    object with a ``now`` attribute on the shared epoch (the process's
    :class:`~repro.live.scheduler.RealtimeScheduler`).
    """

    def __init__(
        self,
        node_id: int,
        windows: Sequence[dict],
        clock,
        rng,
        link_bandwidth_bps: float = LIVE_LINK_BANDWIDTH_BPS,
    ) -> None:
        self.node_id = node_id
        self._clock = clock
        self._rng = rng
        self._bandwidth_bps = link_bandwidth_bps
        self._bucket = _EgressBucket()
        #: Frames dropped by partitions/loss windows (chaos drops, kept
        #: separate from the network's backpressure ``frames_dropped``).
        self.frames_shed = 0
        self._partitions: list[tuple[float, float, dict, int]] = []
        self._losses: list[
            tuple[float, float, float, tuple, Optional[Channel], frozenset]
        ] = []
        self._delays: list[tuple[float, float, float, float, float]] = []
        self._squeezes: list[tuple[float, float, float, frozenset]] = []
        for window in windows:
            start = window["start"]
            end = window["end"]
            end = float("inf") if end is None else end
            kind = window["kind"]
            if kind == "partition":
                group_of: dict[int, int] = {}
                for index, group in enumerate(window["groups"]):
                    for node in group:
                        group_of[node] = index
                rest = len(window["groups"])
                self._partitions.append((start, end, group_of, rest))
            elif kind == "loss":
                channel = (
                    channel_for(window["channel"])
                    if window.get("channel") else None
                )
                self._losses.append((
                    start, end, window["rate"],
                    tuple(window.get("kinds") or ()),
                    channel, frozenset(window.get("nodes") or ()),
                ))
            elif kind == "delay":
                self._delays.append((
                    start, end, window["base"], window["jitter"],
                    window["bandwidth_factor"],
                ))
            elif kind == "bandwidth":
                self._squeezes.append((
                    start, end, window["factor"],
                    frozenset(window.get("nodes") or ()),
                ))
            else:
                raise ValueError(f"unknown shaping window kind {kind!r}")

    @property
    def active(self) -> bool:
        """Whether any window could still fire (idle shapers cost one
        attribute check per frame on the send path)."""
        return bool(
            self._partitions or self._losses
            or self._delays or self._squeezes
        )

    # -- send-time decisions (synchronous) ------------------------------

    def drops(self, src: int, dst: int, kind: str, channel: Channel) -> bool:
        """Whether a frame ``src -> dst`` is dropped by an active window."""
        now = self._clock.now
        for start, end, group_of, rest in self._partitions:
            if start <= now < end and (
                group_of.get(src, rest) != group_of.get(dst, rest)
            ):
                self.frames_shed += 1
                return True
        for start, end, rate, kinds, loss_channel, nodes in self._losses:
            if not start <= now < end:
                continue
            if loss_channel is not None and channel is not loss_channel:
                continue
            if nodes and src not in nodes and dst not in nodes:
                continue
            if kinds and not any(kind.startswith(p) for p in kinds):
                continue
            if self._rng.random() < rate:
                self.frames_shed += 1
                return True
        return False

    # -- write-time shaping (writer task) -------------------------------

    def write_delay(self, dst: int, size: int, channel: Channel) -> float:
        """Seconds to hold a frame before writing it to the socket.

        Delay windows contribute their sampled one-way delay; bandwidth
        squeezes (and delay windows' goodput-collapse factor) throttle
        via the token bucket against the scaled nominal link rate.
        """
        now = self._clock.now
        delay = 0.0
        bandwidth_factor = 1.0
        for start, end, base, jitter, goodput in self._delays:
            if start <= now < end:
                delay += max(
                    0.0, base + self._rng.uniform(-jitter, jitter)
                )
                bandwidth_factor *= goodput
        for start, end, factor, nodes in self._squeezes:
            if start <= now < end and (not nodes or self.node_id in nodes):
                bandwidth_factor *= factor
        if bandwidth_factor < 1.0:
            rate = self._bandwidth_bps * bandwidth_factor / 8.0
            delay += self._bucket.delay(now, rate, size)
        return delay


class LiveFaultInjector:
    """Executes a schedule's crash/restart timeline on OS processes.

    Runs inside the orchestrator's event loop alongside the client
    driver. ``kill``/``respawn`` are orchestrator-supplied callbacks
    (:mod:`repro.live.orchestrator` owns the process table); the
    injector owns only the timeline and its record. Link-shaping
    windows never appear here — they ship inside each replica's spawn
    spec as a :class:`LinkShaper`.
    """

    def __init__(
        self,
        schedule: FaultSchedule,
        epoch: float,
        kill: Callable[[int], None],
        respawn: Callable[[int], None],
    ) -> None:
        self._events: list[FaultEvent] = schedule.process_events()
        self._epoch = epoch
        self._kill = kill
        self._respawn = respawn
        #: Applied process faults: ``{"event", "node", "at", "applied_at"}``
        #: with times on the shared epoch. ``applied_at`` trails ``at`` by
        #: scheduling jitter; respawned interpreters additionally take
        #: their import time before rejoining.
        self.timeline: list[dict] = []

    async def run(self) -> None:
        import asyncio

        for event in self._events:
            delay = self._epoch + event.at - time.time()
            if delay > 0:
                await asyncio.sleep(delay)
            node = event.node
            if isinstance(event, CrashReplica):
                self._kill(node)
                name = "crash"
            else:
                self._respawn(node)
                name = "restart"
            self.timeline.append({
                "event": name,
                "node": node,
                "at": event.at,
                "applied_at": time.time() - self._epoch,
            })
